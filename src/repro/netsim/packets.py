"""Packet model: Ethernet / IP / UDP framing with byte-accurate sizes.

The simulator is *packet level*: a :class:`Packet` is the unit that crosses
links and switches.  Header sizes follow standard wire formats so that
serialization delay over a 10 GbE link matches what the paper's testbed
would see:

=====================  =====
Component              Bytes
=====================  =====
Ethernet header + FCS     18
802.1Q VLAN tag            4
IP header                 20
UDP header                 8
Max Ethernet frame      1522   (paper §3.2: "typically 1,522 bytes")
MTU (IP payload)        1500
=====================  =====

The iSwitch protocol (see :mod:`repro.core.protocol`) rides in the UDP
payload and tags packets through the IP **ToS** byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = [
    "ETHERNET_OVERHEAD",
    "VLAN_TAG",
    "IP_HEADER",
    "UDP_HEADER",
    "MAX_FRAME",
    "MTU",
    "MAX_UDP_PAYLOAD",
    "TOS_DEFAULT",
    "PER_FRAME_OVERHEAD",
    "Packet",
    "PacketTrain",
]

ETHERNET_OVERHEAD = 18  # 14-byte header + 4-byte FCS
VLAN_TAG = 4
IP_HEADER = 20
UDP_HEADER = 8
MAX_FRAME = 1522  # max 802.1Q Ethernet frame, as quoted in the paper
MTU = 1500  # max IP packet carried in one frame
MAX_UDP_PAYLOAD = MTU - IP_HEADER - UDP_HEADER  # 1472 bytes

TOS_DEFAULT = 0

#: Header bytes added per Ethernet frame (Ethernet + FCS, VLAN, IP, UDP).
PER_FRAME_OVERHEAD = ETHERNET_OVERHEAD + VLAN_TAG + IP_HEADER + UDP_HEADER

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One UDP/IP/Ethernet packet.

    ``payload_size`` counts only the UDP payload bytes; :attr:`wire_size`
    adds all header overheads.  A packet may represent a **train** of
    ``frame_count`` back-to-back Ethernet frames from the same flow: the
    wire size then includes one set of headers per frame, so serialization
    delay is exactly that of the individual frames sent back to back.
    Trains exist purely to keep event counts tractable when simulating
    multi-megabyte gradient vectors; with ``frame_count=1`` (the default)
    the model is strictly per-frame.

    ``payload`` carries an arbitrary Python object (e.g. a NumPy slice of
    gradient data, or a control message).  The simulator never serializes
    it — sizes are explicit so timing stays byte-accurate without the cost
    of real encoding.
    """

    src: str
    dst: str
    payload_size: int
    tos: int = TOS_DEFAULT
    payload: Any = None
    src_port: int = 0
    dst_port: int = 0
    frame_count: int = 1
    #: Training-job id this packet belongs to (0 = the default job, which
    #: also covers non-aggregation traffic).  Multi-tenant runs stamp the
    #: originating job so per-job telemetry can attribute link traffic.
    job: int = 0
    packet_id: int = field(default_factory=_packet_ids.__next__)
    hops: int = 0
    created_at: Optional[float] = None
    #: Total bytes on the wire, headers included (per-frame overheads).
    #: Precomputed: the link layer reads it once per hop and neither
    #: ``payload_size`` nor ``frame_count`` changes after construction.
    wire_size: int = field(init=False)

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError(f"negative payload size: {self.payload_size}")
        if self.frame_count < 1:
            raise ValueError(f"frame_count must be >= 1, got {self.frame_count}")
        if self.payload_size > self.frame_count * MAX_UDP_PAYLOAD:
            raise ValueError(
                f"payload of {self.payload_size} B does not fit in "
                f"{self.frame_count} frame(s) "
                f"({self.frame_count * MAX_UDP_PAYLOAD} B max); "
                "fragmentation is not modelled"
            )
        if not 0 <= self.tos <= 255:
            raise ValueError(f"ToS must be one byte, got {self.tos}")
        self.wire_size = self.frame_count * PER_FRAME_OVERHEAD + self.payload_size

    def copy_for(self, dst: str) -> "Packet":
        """Clone this packet for a new destination (used by broadcast).

        The clone gets a fresh ``packet_id`` but shares the payload object;
        callers that mutate payloads must copy them explicitly.
        """
        return Packet(
            src=self.src,
            dst=dst,
            payload_size=self.payload_size,
            tos=self.tos,
            payload=self.payload,
            src_port=self.src_port,
            dst_port=self.dst_port,
            frame_count=self.frame_count,
            job=self.job,
            hops=self.hops,
            created_at=self.created_at,
        )

    def clone_to(self, dst: str) -> "Packet":
        """Broadcast-hot clone: like :meth:`copy_for` without re-validation.

        The source packet already passed ``__post_init__`` and only the
        destination changes, so the size/ToS invariants cannot break.
        """
        p = object.__new__(Packet)
        p.src = self.src
        p.dst = dst
        p.payload_size = self.payload_size
        p.tos = self.tos
        p.payload = self.payload
        p.src_port = self.src_port
        p.dst_port = self.dst_port
        p.frame_count = self.frame_count
        p.job = self.job
        p.packet_id = next(_packet_ids)
        p.hops = self.hops
        p.created_at = self.created_at
        p.wire_size = self.wire_size
        return p

    @classmethod
    def trusted(
        cls,
        src: str,
        dst: str,
        payload_size: int,
        tos: int,
        payload: Any,
        src_port: int,
        dst_port: int,
        frame_count: int,
        job: int,
    ) -> "Packet":
        """Validation-free constructor for callers whose sizes come from an
        already-validated :class:`~repro.core.protocol.SegmentPlan`.

        Per-packet construction dominates the batched transport path;
        skipping ``__post_init__`` here is safe because the plan guarantees
        the payload fits its frames and the ToS values are module
        constants.
        """
        p = object.__new__(cls)
        p.src = src
        p.dst = dst
        p.payload_size = payload_size
        p.tos = tos
        p.payload = payload
        p.src_port = src_port
        p.dst_port = dst_port
        p.frame_count = frame_count
        p.job = job
        p.packet_id = next(_packet_ids)
        p.hops = 0
        p.created_at = None
        p.wire_size = frame_count * PER_FRAME_OVERHEAD + payload_size
        return p

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_size}B tos={self.tos})"
        )


class PacketTrain:
    """A burst of same-destination packets delivered as **one** event.

    The batched transport path (:meth:`repro.netsim.link.LinkEnd.send_train`)
    computes every packet's arrival time in one vectorized expression and
    schedules a single delivery at the last arrival.  The train carries the
    per-packet arrival times (``arrivals[i]`` is exactly the time packet
    ``i``'s own delivery event would have fired on the per-packet path), so
    consumers that care about per-packet timing — on-the-fly aggregation,
    store-and-forward switches, packet capture — stay timestamp-accurate.

    Invariants: ``len(packets) == len(arrivals) >= 1`` and ``arrivals`` is
    sorted ascending (link FIFO order).  All packets share one destination
    device; dropped packets are removed before the train is handed to it.
    """

    __slots__ = ("packets", "arrivals")

    def __init__(self, packets: List[Packet], arrivals) -> None:
        if len(packets) != len(arrivals):
            raise ValueError(
                f"train has {len(packets)} packets but "
                f"{len(arrivals)} arrival times"
            )
        if not packets:
            raise ValueError("a train carries at least one packet")
        self.packets = packets
        #: Per-packet receiver-side arrival times (float64 ndarray).
        self.arrivals = arrivals

    def __len__(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        first, last = self.packets[0], self.packets[-1]
        return (
            f"PacketTrain({len(self.packets)}p {first.src}->{last.dst} "
            f"t=[{self.arrivals[0]:.9f}, {self.arrivals[-1]:.9f}])"
        )

"""Measurement helpers: latency recorders and simple time-series traces."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["LatencyStats", "TimeSeries"]


@dataclass
class LatencyStats:
    """Streaming summary statistics over recorded durations (seconds)."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "LatencyStats") -> None:
        """Fold another recorder's samples into this one."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. episode reward vs simulated wall clock."""

    name: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self.points[-1][0]}"
            )
        self.points.append((time, value))

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def value_at(self, time: float) -> float:
        """Step-interpolated value at ``time`` (last sample at or before)."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        result = self.points[0][1]
        for t, v in self.points:
            if t > time:
                break
            result = v
        return result

    def time_to_reach(self, threshold: float) -> float:
        """First sample time whose value is >= threshold, or +inf."""
        for t, v in self.points:
            if v >= threshold:
                return t
        return math.inf

"""Topology builders: single-switch racks and two-layer rack-scale trees.

Two shapes cover everything in the paper:

* ``build_star`` — the main 4-node cluster (§5.3): N hosts on one switch,
  optionally plus a parameter-server host.
* ``build_rack_tree`` — the scalability setup (§5.3, Figure 10): a root
  switch connecting several racks, each rack a ToR switch with a few
  workers.  Host↔ToR links run at 10 Gb/s; ToR↔root links default to
  40 Gb/s, matching the paper's "higher network bandwidth (e.g., 40Gb to
  100Gb)" for the aggregation layer.

Builders take a ``switch_factory`` so the same wiring code produces either
regular :class:`~repro.netsim.switch.EthernetSwitch` fabric or iSwitch
fabric (:class:`repro.core.switch.ISwitch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .events import Simulator
from .link import GBPS, Link
from .node import Host
from .switch import EthernetSwitch

__all__ = ["Network", "build_star", "build_rack_tree", "build_three_tier"]

SwitchFactory = Callable[[Simulator, str], EthernetSwitch]


def _default_switch_factory(sim: Simulator, name: str) -> EthernetSwitch:
    return EthernetSwitch(sim, name)


@dataclass
class Network:
    """A built topology: the simulator plus named devices.

    ``workers`` excludes any parameter-server host; ``hosts`` includes it.
    ``switches`` is ordered leaf-to-root (ToRs first, root last) so the
    hierarchical-aggregation code can find parents by construction order.
    """

    sim: Simulator
    hosts: Dict[str, Host] = field(default_factory=dict)
    switches: List[EthernetSwitch] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    workers: List[Host] = field(default_factory=list)
    server: Optional[Host] = None
    #: ToR switch serving each worker, parallel to ``workers``.
    tor_of_worker: List[EthernetSwitch] = field(default_factory=list)
    root: Optional[EthernetSwitch] = None

    def host(self, name: str) -> Host:
        return self.hosts[name]


def _connect_host(
    net: Network,
    host: Host,
    switch: EthernetSwitch,
    bandwidth: float,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> None:
    """Attach ``host`` to ``switch`` with a new link appended to ``net.links``.

    Each link's rng is seeded ``loss_seed + len(net.links)`` — i.e. the
    base seed plus the link's creation index.  Builders create links in a
    fixed, documented order (workers in index order, then the optional
    server; rack trees interleave one uplink before each rack's hosts),
    so the index — and therefore every link's drop sequence — is a pure
    function of the topology shape.  Two runs with the same builder
    arguments drop exactly the same packets, while distinct links never
    share a seed (which would correlate their drop patterns).  This
    contract is pinned by ``test_loss_seed_derivation_is_deterministic``
    in ``tests/test_faults.py``; changing it invalidates every recorded
    lossy-run result.
    """
    link = Link(
        net.sim,
        bandwidth=bandwidth,
        name=f"{host.name}<->{switch.name}",
        loss_rate=loss_rate,
        # Per-link offset decorrelates drops while staying reproducible.
        loss_seed=loss_seed + len(net.links),
    )
    link.attach(host, switch)
    switch.add_route(host.name, link.ends[1])
    net.links.append(link)


def build_star(
    sim: Simulator,
    n_workers: int,
    with_server: bool = False,
    bandwidth: float = 10 * GBPS,
    switch_factory: SwitchFactory = _default_switch_factory,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> Network:
    """N workers (and optionally one PS host) on a single switch.

    Worker hosts are named ``worker0..workerN-1``; the PS host is ``server``.
    ``loss_rate`` applies independent per-packet drops on every host link.
    ``loss_seed`` is a *base* seed: link ``i`` (in creation order —
    worker0..workerN-1, then ``server``) uses ``loss_seed + i``, making
    drop sequences reproducible per link yet decorrelated across links
    (see :func:`_connect_host`).
    """
    if n_workers < 1:
        raise ValueError(f"need at least one worker, got {n_workers}")
    net = Network(sim=sim)
    switch = switch_factory(sim, "tor0")
    net.switches.append(switch)
    net.root = switch

    for i in range(n_workers):
        host = Host(sim, f"worker{i}")
        _connect_host(net, host, switch, bandwidth, loss_rate, loss_seed)
        net.hosts[host.name] = host
        net.workers.append(host)
        net.tor_of_worker.append(switch)

    if with_server:
        server = Host(sim, "server")
        _connect_host(net, server, switch, bandwidth, loss_rate, loss_seed)
        net.hosts[server.name] = server
        net.server = server
    return net


def build_rack_tree(
    sim: Simulator,
    n_workers: int,
    workers_per_rack: int = 3,
    with_server: bool = False,
    host_bandwidth: float = 10 * GBPS,
    uplink_bandwidth: float = 40 * GBPS,
    switch_factory: SwitchFactory = _default_switch_factory,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> Network:
    """A root switch over ceil(N / workers_per_rack) ToR racks.

    Matches the paper's scalability emulation: "the cluster has a root
    switch connecting to multiple racks and each rack contains three worker
    nodes".  If ``with_server`` is set, the PS host hangs off the root
    switch (so every worker↔server path crosses the hierarchy, as it would
    in a real deployment where the PS sits in its own rack).
    """
    if n_workers < 1:
        raise ValueError(f"need at least one worker, got {n_workers}")
    if workers_per_rack < 1:
        raise ValueError(f"workers_per_rack must be >= 1, got {workers_per_rack}")

    net = Network(sim=sim)
    root = switch_factory(sim, "root")
    net.root = root

    n_racks = (n_workers + workers_per_rack - 1) // workers_per_rack
    worker_idx = 0
    for rack in range(n_racks):
        tor = switch_factory(sim, f"tor{rack}")
        net.switches.append(tor)
        uplink = Link(
            sim,
            bandwidth=uplink_bandwidth,
            name=f"{tor.name}<->{root.name}",
            loss_rate=loss_rate,
            loss_seed=loss_seed + len(net.links),
        )
        uplink.attach(tor, root)
        tor.set_default_route(uplink.ends[0])
        net.links.append(uplink)

        in_this_rack = min(workers_per_rack, n_workers - worker_idx)
        for _ in range(in_this_rack):
            host = Host(sim, f"worker{worker_idx}")
            _connect_host(net, host, tor, host_bandwidth, loss_rate, loss_seed)
            net.hosts[host.name] = host
            net.workers.append(host)
            net.tor_of_worker.append(tor)
            # Root routes to this worker via the rack uplink.
            root.add_route(host.name, uplink.ends[1])
            worker_idx += 1

    net.switches.append(root)

    if with_server:
        server = Host(sim, "server")
        _connect_host(net, server, root, uplink_bandwidth, loss_rate, loss_seed)
        net.hosts[server.name] = server
        net.server = server
        # Every ToR reaches the server through its default (uplink) route.
    return net


def build_three_tier(
    sim: Simulator,
    n_workers: int,
    workers_per_rack: int = 3,
    racks_per_pod: int = 2,
    host_bandwidth: float = 10 * GBPS,
    agg_bandwidth: float = 40 * GBPS,
    core_bandwidth: float = 100 * GBPS,
    switch_factory: SwitchFactory = _default_switch_factory,
) -> Network:
    """The full Figure 10 hierarchy: ToR -> AGG -> Core.

    Workers sit in racks under ToR switches; ``racks_per_pod`` ToRs share
    one aggregation (AGG) switch; all AGG switches connect to a single
    core switch.  Bandwidths follow the paper's "10Gb Ethernet [to hosts]
    ... higher network bandwidth (e.g., 40Gb to 100Gb)" in the upper
    layers.  ``net.switches`` is ordered ToRs, then AGGs, then the core
    (leaf-to-root), and ``net.root`` is the core switch.
    """
    if n_workers < 1:
        raise ValueError(f"need at least one worker, got {n_workers}")
    if workers_per_rack < 1 or racks_per_pod < 1:
        raise ValueError("workers_per_rack and racks_per_pod must be >= 1")

    net = Network(sim=sim)
    core = switch_factory(sim, "core")
    net.root = core

    n_racks = (n_workers + workers_per_rack - 1) // workers_per_rack
    n_pods = (n_racks + racks_per_pod - 1) // racks_per_pod

    aggs: List[EthernetSwitch] = []
    tors: List[EthernetSwitch] = []
    worker_idx = 0
    rack = 0
    for pod in range(n_pods):
        agg = switch_factory(sim, f"agg{pod}")
        aggs.append(agg)
        core_link = Link(
            sim, bandwidth=core_bandwidth, name=f"{agg.name}<->{core.name}"
        )
        core_link.attach(agg, core)
        agg.set_default_route(core_link.ends[0])
        net.links.append(core_link)

        racks_here = min(racks_per_pod, n_racks - rack)
        for _ in range(racks_here):
            tor = switch_factory(sim, f"tor{rack}")
            tors.append(tor)
            uplink = Link(
                sim, bandwidth=agg_bandwidth, name=f"{tor.name}<->{agg.name}"
            )
            uplink.attach(tor, agg)
            tor.set_default_route(uplink.ends[0])
            net.links.append(uplink)

            in_this_rack = min(workers_per_rack, n_workers - worker_idx)
            for _ in range(in_this_rack):
                host = Host(sim, f"worker{worker_idx}")
                _connect_host(net, host, tor, host_bandwidth)
                net.hosts[host.name] = host
                net.workers.append(host)
                net.tor_of_worker.append(tor)
                # Upward routing is by default routes; downward routing
                # needs explicit per-level entries.
                agg.add_route(host.name, uplink.ends[1])
                core.add_route(host.name, core_link.ends[1])
                worker_idx += 1
            rack += 1

    net.switches.extend(tors)
    net.switches.extend(aggs)
    net.switches.append(core)
    return net

"""The regular (non-programmable) store-and-forward Ethernet switch.

This is the substrate the PS and AllReduce baselines run on, and the chassis
the iSwitch accelerator extends (:mod:`repro.core.switch` subclasses it).

Forwarding model
----------------
* Store-and-forward: the ingress link already delivered the whole frame, so
  the switch only adds a fixed processing latency before the egress
  transmitter takes over (cut-through is not modelled; at 10 GbE and
  1.5 kB frames the difference is ~1.2 µs and identical across all
  compared systems).
* The forwarding table maps destination host names to egress ports and is
  populated by the topology builder (static routing — the experiments do
  not exercise MAC learning, and the paper's switches are statically
  configured too).
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import Simulator
from .link import LinkEnd
from .node import Device
from .packets import Packet, PacketTrain

__all__ = ["EthernetSwitch", "DEFAULT_SWITCH_LATENCY"]

#: Port-to-port latency of a commodity 10 GbE ToR switch (~1 µs).
DEFAULT_SWITCH_LATENCY = 1e-6


class EthernetSwitch(Device):
    """An N-port store-and-forward switch with a static forwarding table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float = DEFAULT_SWITCH_LATENCY,
    ) -> None:
        super().__init__(sim, name)
        if latency < 0:
            raise ValueError(f"switch latency must be >= 0, got {latency}")
        self.latency = latency
        self._fib: Dict[str, LinkEnd] = {}
        self._default_route: Optional[LinkEnd] = None
        self.forwarded_packets = 0
        self.dropped_packets = 0

    # ------------------------------------------------------------------
    # Forwarding table
    # ------------------------------------------------------------------
    def add_route(self, dst: str, port: LinkEnd) -> None:
        """Route packets addressed to host ``dst`` out of ``port``."""
        if port not in self.ports:
            raise ValueError(f"{port!r} is not a port of switch {self.name}")
        self._fib[dst] = port

    def set_default_route(self, port: LinkEnd) -> None:
        """Route unknown destinations out of ``port`` (the uplink)."""
        if port not in self.ports:
            raise ValueError(f"{port!r} is not a port of switch {self.name}")
        self._default_route = port

    def lookup(self, dst: str) -> Optional[LinkEnd]:
        return self._fib.get(dst, self._default_route)

    @property
    def default_route(self) -> Optional[LinkEnd]:
        """The uplink port unknown destinations are forwarded out of."""
        return self._default_route

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        self._count_rx(packet)
        self.process(packet, in_port)

    def process(self, packet: Packet, in_port: LinkEnd) -> None:
        """The regular forwarding path.  Subclasses may intercept first."""
        egress = self.lookup(packet.dst)
        if egress is None or egress is in_port:
            # Unknown destination or would hairpin: drop.  The experiments
            # never rely on flooding, so a drop here indicates a miswired
            # topology and the counters make that visible in tests.
            self.dropped_packets += 1
            return
        self.forwarded_packets += 1
        self.sim.schedule_fire(
            self.latency,
            lambda: egress.send(packet),
            "fwd",
        )

    def handle_train(self, train: PacketTrain, in_port: LinkEnd) -> None:
        """Forward a whole train without per-packet events.

        Each packet's forwarding event would have fired at
        ``arrival + latency`` on the per-packet path; the egress trains
        carry exactly those times as per-packet ready times, so the
        egress transmitter reproduces the same serialization schedule.
        """
        packets = train.packets
        n = len(packets)
        self.rx_packets += n
        nbytes = 0
        for packet in packets:
            nbytes += packet.wire_size
        self.rx_bytes += nbytes
        ready = train.arrivals + self.latency
        # Group by egress preserving order (normally one group: trains are
        # same-destination by construction).
        groups: Dict[int, list] = {}
        order = []
        for i, packet in enumerate(packets):
            egress = self.lookup(packet.dst)
            if egress is None or egress is in_port:
                self.dropped_packets += 1
                continue
            key = id(egress)
            group = groups.get(key)
            if group is None:
                groups[key] = group = [egress, [], []]
                order.append(key)
            group[1].append(packet)
            group[2].append(ready[i])
        forwarded = 0
        for key in order:
            egress, group_packets, group_ready = groups[key]
            forwarded += len(group_packets)
            self.forwarded_packets += len(group_packets)
            egress.send_train(group_packets, group_ready)
        # One logical "fwd" event per forwarded packet on the reference path.
        self.sim.count_batched(forwarded, "fwd")

"""Full-duplex point-to-point links with serialization and propagation.

A :class:`Link` joins two devices.  Each direction is independent (full
duplex) and owns a FIFO transmit queue: a packet occupies the transmitter
for ``wire_size * 8 / bandwidth`` seconds, then arrives at the far end
``propagation`` seconds later.  Queueing delay therefore emerges naturally
when a device offers packets faster than the link drains them — this is
what makes the parameter-server's single ingress link the bottleneck the
paper describes.

Packet loss
-----------
Two loss behaviours are modelled, both decided at *send* time (the drop
is accounted when the packet would have been delivered, so a dropped
packet still occupies the transmitter — exactly what a corrupted frame
does on real Ethernet):

* **Independent drops** — ``loss_rate`` is a per-packet Bernoulli drop
  probability, drawn from ``loss_rng``.  This is the historical knob the
  loss-recovery unit tests use.
* **Correlated (bursty) drops** — attaching a :class:`GilbertElliott`
  model via :attr:`Link.loss_model` overrides ``loss_rate`` and produces
  the loss *bursts* that real congestion and link flaps exhibit.  The
  fault-injection layer (:mod:`repro.faults`) installs and removes these
  models for timed windows.

Determinism: every random draw comes from ``loss_rng``, a
``numpy.random.default_rng(loss_seed)`` owned by the link.  Topology
builders derive each link's seed as ``loss_seed + len(net.links)`` (the
link's creation index) so that drops are decorrelated across links yet
bit-reproducible for a fixed topology and seed — see
:func:`repro.netsim.topology.build_star` and the determinism test in
``tests/test_faults.py``.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from .events import Simulator
from .packets import Packet, PacketTrain

if TYPE_CHECKING:  # pragma: no cover
    from .node import Device

__all__ = [
    "Link",
    "LinkEnd",
    "GilbertElliott",
    "GBPS",
    "DEFAULT_PROPAGATION",
]

GBPS = 1e9  # bits per second
#: One-way propagation for an in-rack copper/fiber run (~100 ns, i.e. ~20 m).
DEFAULT_PROPAGATION = 100e-9


class GilbertElliott:
    """Two-state Markov (Gilbert–Elliott) burst-loss model.

    The chain alternates between a *good* state (drop probability
    ``loss_good``, usually 0) and a *bad* state (drop probability
    ``loss_bad``).  Each packet first advances the state — good→bad with
    probability ``p_good_to_bad``, bad→good with ``p_bad_to_good`` — then
    samples a drop at the current state's rate, so losses arrive in
    bursts whose mean length is ``1 / p_bad_to_good`` packets.

    The stationary fraction of time spent in the bad state is
    ``p_gb / (p_gb + p_bg)``, which gives a mean loss rate of
    ``loss_good + pi_bad * (loss_bad - loss_good)``.
    :meth:`from_mean_loss` inverts that relation so fault plans can be
    written in terms of a target mean loss rate.

    >>> ge = GilbertElliott.from_mean_loss(0.02)
    >>> round(ge.mean_loss_rate(), 6)
    0.02
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_bad: float,
        loss_good: float = 0.0,
    ) -> None:
        for label, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_bad", loss_bad),
            ("loss_good", loss_good),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_bad = loss_bad
        self.loss_good = loss_good
        self.bad = False

    @classmethod
    def from_mean_loss(
        cls,
        loss: float,
        loss_bad: float = 0.5,
        p_bad_to_good: float = 0.25,
    ) -> "GilbertElliott":
        """Build a model whose stationary mean loss rate is ``loss``.

        ``loss_bad`` is the in-burst drop rate and ``1/p_bad_to_good``
        the mean burst length (packets); ``p_good_to_bad`` is solved
        from the stationary distribution.
        """
        if not 0.0 < loss < loss_bad:
            raise ValueError(
                f"mean loss must be in (0, loss_bad={loss_bad}), got {loss}"
            )
        pi_bad = loss / loss_bad
        p_gb = pi_bad * p_bad_to_good / (1.0 - pi_bad)
        return cls(min(1.0, p_gb), p_bad_to_good, loss_bad)

    def mean_loss_rate(self) -> float:
        """Stationary mean per-packet drop probability."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        pi_bad = self.p_good_to_bad / denom if denom > 0 else 0.0
        return self.loss_good + pi_bad * (self.loss_bad - self.loss_good)

    def should_drop(self, rng: np.random.Generator) -> bool:
        """Advance the Markov state, then sample a drop (two rng draws)."""
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        return rate > 0.0 and rng.random() < rate


class LinkEnd:
    """One attachment point of a :class:`Link`.

    Devices hold ``LinkEnd`` objects as their "ports" and call
    :meth:`send` to transmit toward the peer device.
    """

    def __init__(self, link: "Link", index: int) -> None:
        self.link = link
        self.index = index
        self.device: Optional["Device"] = None
        #: Filled by :meth:`Link.attach`; caches the two properties below
        #: for the per-packet delivery path.
        self._peer_end: Optional["LinkEnd"] = None
        self._peer_device: Optional["Device"] = None
        self._busy_until = 0.0
        self._queued_packets = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Cumulative seconds this transmitter spent serializing.
        self.busy_time = 0.0

    @property
    def peer(self) -> "LinkEnd":
        """The opposite end of the link."""
        return self.link.ends[1 - self.index]

    @property
    def peer_device(self) -> "Device":
        device = self.peer.device
        if device is None:
            raise RuntimeError(f"{self.link} end {1 - self.index} is unattached")
        return device

    @property
    def queue_depth(self) -> int:
        """Packets queued or in flight on this transmitter right now."""
        return self._queued_packets

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def send(self, packet: Packet) -> float:
        """Transmit ``packet`` toward the peer; returns its arrival time.

        The transmitter serializes packets back to back in FIFO order.
        """
        link = self.link
        sim = link.sim
        now = sim.now
        if packet.created_at is None:
            packet.created_at = now
        busy = self._busy_until
        wire_size = packet.wire_size
        serialization = wire_size * link._seconds_per_byte
        end = (busy if busy > now else now) + serialization
        self._busy_until = end
        self.busy_time += serialization
        arrival = end + link.propagation
        self.tx_packets += 1
        self.tx_bytes += wire_size
        self._queued_packets += 1
        packet.hops += 1
        loss_model = link.loss_model
        if loss_model is not None:
            dropped = loss_model.should_drop(link.loss_rng)
        else:
            dropped = (
                link.loss_rate > 0.0 and link.loss_rng.random() < link.loss_rate
            )
        telemetry = sim.telemetry
        if telemetry.enabled:
            if packet.job:
                # Multi-tenant traffic: attribute tx volume to the job so
                # per-tenant telemetry can separate shared-link usage.
                telemetry.inc(
                    "link.tx_packets", 1, link=link.name, job=packet.job
                )
                telemetry.inc(
                    "link.tx_bytes",
                    packet.wire_size,
                    link=link.name,
                    job=packet.job,
                )
            else:
                telemetry.inc("link.tx_packets", 1, link=link.name)
                telemetry.inc("link.tx_bytes", packet.wire_size, link=link.name)
            telemetry.set_gauge(
                "link.queue_depth", self._queued_packets, link=link.name
            )

        def deliver() -> None:
            self._queued_packets -= 1
            # ``telemetry`` is captured from send time; the hub is fixed
            # for a simulator's lifetime, so this stays current.
            if telemetry.enabled:
                telemetry.set_gauge(
                    "link.queue_depth", self._queued_packets, link=link.name
                )
                if dropped:
                    telemetry.inc("link.packets_dropped", 1, link=link.name)
            if dropped:
                link.dropped_packets += 1
                return
            device = self._peer_device
            if device is None:  # unattached link: keep the loud error path
                device = self.peer_device
            device.handle_packet(packet, self._peer_end or self.peer)

        sim.schedule_fire_at(arrival, deliver, "deliver")
        return arrival

    def send_train(
        self,
        packets: List[Packet],
        ready: Optional[Sequence[float]] = None,
    ) -> float:
        """Transmit a burst of packets toward the peer as **one** train.

        This is the batched-transport fast path: all serialization and
        propagation arithmetic happens in one pass and a single delivery
        event fires at the last packet's arrival, with the per-packet
        arrival times carried on the :class:`PacketTrain`.  Two shapes:

        * ``ready=None`` — an *offered burst*: every packet hits the
          transmit queue right now, exactly like N back-to-back
          :meth:`send` calls in one event (how a worker streams a
          gradient).  The arrival times reproduce the sequential FIFO
          recurrence bit for bit (``np.add.accumulate`` is a strict
          left-to-right float64 sum, matching ``e_k = e_{k-1} + ser_k``).
        * ``ready`` given (non-decreasing, one entry per packet) — a
          *forwarded train*: packet ``i`` reaches this transmitter at
          ``ready[i]`` (its per-packet forwarding event time), so each
          transmission starts at ``max(busy, ready[i])``, again matching
          the per-packet path exactly.

        Fault windows (:mod:`repro.faults`) register *train barriers* —
        future times at which this link's loss model or bandwidth changes.
        A forwarded train straddling a barrier is split there: packets
        whose ready time falls at/after the barrier are re-offered in a
        fresh event at the barrier time, after the fault boundary has
        applied, so they see exactly the link state the per-packet path
        would have.  Offered bursts never split: their per-packet
        equivalent also commits all loss draws and reads the bandwidth in
        a single event at send time.

        Returns the arrival time of the last packet transmitted now (or
        the barrier time when the whole train was deferred).
        """
        link = self.link
        sim = link.sim
        now = sim.now
        barriers = link.train_barriers
        if barriers:
            while barriers and barriers[0] <= now:
                barriers.pop(0)  # boundary already applied this timestamp
            if barriers and ready is not None and ready[-1] >= barriers[0]:
                boundary = barriers[0]
                split = int(np.searchsorted(ready, boundary, side="left"))
                deferred = packets[split:]
                deferred_ready = ready[split:]
                sim.schedule_fire_at(
                    boundary,
                    lambda: self.send_train(deferred, deferred_ready),
                    "train-defer",
                )
                if split == 0:
                    return boundary
                packets = packets[:split]
                ready = ready[:split]
        n = len(packets)
        if n == 1 and ready is None:
            return self.send(packets[0])
        wire = np.empty(n, dtype=np.float64)
        total_wire = 0
        for i, packet in enumerate(packets):
            size = packet.wire_size
            wire[i] = size
            total_wire += size
            packet.hops += 1
        serialization = wire * link._seconds_per_byte
        # Python-float view: keeps np.float64 from leaking into
        # ``_busy_until``/``created_at``/``busy_time`` (same IEEE doubles,
        # wrong type for downstream scheduling and stats).
        ser_list = serialization.tolist()
        busy = self._busy_until
        if ready is None:
            for packet in packets:
                if packet.created_at is None:
                    packet.created_at = now
            # Fold the first start time into element 0, then accumulate:
            # ufunc.accumulate sums strictly left to right, so arr[k]
            # reproduces the sequential e_k = e_{k-1} + ser_k recurrence
            # with identical rounding.
            ends = serialization.copy()
            ends[0] = (busy if busy > now else now) + serialization[0]
            np.add.accumulate(ends, out=ends)
            self._busy_until = float(ends[-1])
        else:
            # Gap-capable recurrence (max against each ready time); plain
            # float loop to preserve the per-packet operation order.
            ends = np.empty(n, dtype=np.float64)
            for i in range(n):
                packet = packets[i]
                r = float(ready[i])
                if packet.created_at is None:
                    packet.created_at = r
                start = busy if busy > r else r
                busy = start + ser_list[i]
                ends[i] = busy
            self._busy_until = busy
        busy_time = self.busy_time
        for s in ser_list:
            # Repeated adds (not a multiply): must match the per-packet
            # accumulation bit for bit.
            busy_time += s
        self.busy_time = busy_time
        arrivals = ends + link.propagation
        self.tx_packets += n
        self.tx_bytes += total_wire
        self._queued_packets += n
        # Loss draws, per packet in transmission order — the same rng
        # consumption as N per-packet sends.
        loss_model = link.loss_model
        rng = link.loss_rng
        dropped_mask = None
        n_dropped = 0
        if loss_model is not None:
            dropped_mask = np.empty(n, dtype=bool)
            for i in range(n):
                dropped_mask[i] = loss_model.should_drop(rng)
            n_dropped = int(dropped_mask.sum())
        elif link.loss_rate > 0.0:
            rate = link.loss_rate
            dropped_mask = np.empty(n, dtype=bool)
            for i in range(n):
                dropped_mask[i] = rng.random() < rate
            n_dropped = int(dropped_mask.sum())
        telemetry = sim.telemetry
        if telemetry.enabled:
            per_job: dict = {}
            for packet in packets:
                entry = per_job.get(packet.job)
                if entry is None:
                    per_job[packet.job] = [1, packet.wire_size]
                else:
                    entry[0] += 1
                    entry[1] += packet.wire_size
            for job, (count, nbytes) in per_job.items():
                if job:
                    telemetry.inc(
                        "link.tx_packets", count, link=link.name, job=job
                    )
                    telemetry.inc(
                        "link.tx_bytes", nbytes, link=link.name, job=job
                    )
                else:
                    telemetry.inc("link.tx_packets", count, link=link.name)
                    telemetry.inc("link.tx_bytes", nbytes, link=link.name)
            telemetry.set_gauge(
                "link.queue_depth", self._queued_packets, link=link.name
            )
        mask = dropped_mask
        dropped_count = n_dropped

        def deliver_train() -> None:
            self._queued_packets -= n
            if telemetry.enabled:
                telemetry.set_gauge(
                    "link.queue_depth", self._queued_packets, link=link.name
                )
                if dropped_count:
                    telemetry.inc(
                        "link.packets_dropped", dropped_count, link=link.name
                    )
            # Each packet's delivery was one event on the per-packet path
            # (dropped ones included); this physical event already counts 1.
            sim.count_batched(n - 1, "deliver")
            if dropped_count:
                link.dropped_packets += dropped_count
                if dropped_count == n:
                    return
                survivors = [
                    packet
                    for packet, gone in zip(packets, mask)
                    if not gone
                ]
                survivor_arrivals = arrivals[~mask]
            else:
                survivors = packets
                survivor_arrivals = arrivals
            device = self._peer_device
            if device is None:  # unattached link: keep the loud error path
                device = self.peer_device
            train = PacketTrain(survivors, survivor_arrivals)
            in_port = self._peer_end or self.peer
            handle_train = getattr(device, "handle_train", None)
            if handle_train is not None:
                handle_train(train, in_port)
            else:
                for packet in survivors:
                    device.handle_packet(packet, in_port)

        last_arrival = float(arrivals[-1])
        sim.schedule_fire_at(last_arrival, deliver_train, "deliver")
        return last_arrival

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        owner = self.device.name if self.device else "?"
        return f"LinkEnd({owner} on {self.link.name})"


class Link:
    """A bidirectional link with symmetric bandwidth and propagation delay.

    ``loss_rate`` injects independent per-packet drops (for the
    loss-recovery tests; the paper notes packet loss "is uncommon in the
    cluster environment" — the default is lossless).

    ``loss_seed`` seeds the link-private ``loss_rng``; with the same
    topology, seed and traffic, the exact same packets drop on every
    run.  ``loss_model`` (normally ``None``) may be set to a
    :class:`GilbertElliott` instance to switch this link to correlated
    burst loss; while set it takes precedence over ``loss_rate``.  Both
    knobs may also be mutated mid-run — the fault injector uses this for
    timed loss windows and bandwidth-degradation windows (``bandwidth``
    is read per-send, so changes apply to subsequent transmissions
    only).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 10 * GBPS,
        propagation: float = DEFAULT_PROPAGATION,
        name: str = "",
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if propagation < 0:
            raise ValueError(f"propagation must be >= 0, got {propagation}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.name = name or f"link{id(self):x}"
        self.loss_rate = loss_rate
        self.loss_rng = np.random.default_rng(loss_seed)
        #: Optional :class:`GilbertElliott`; overrides ``loss_rate`` when set.
        self.loss_model: Optional[GilbertElliott] = None
        self.dropped_packets = 0
        #: Future times at which this link's properties change (fault
        #: window edges), kept sorted.  Forwarded trains split here — see
        #: :meth:`LinkEnd.send_train`.  Mutating ``bandwidth`` or the loss
        #: knobs mid-run *without* registering a barrier is still legal,
        #: but in-flight trains then keep the state they were computed
        #: with (the documented approximation; the fault injector always
        #: registers barriers).
        self.train_barriers: List[float] = []
        self.ends = (LinkEnd(self, 0), LinkEnd(self, 1))

    def add_train_barrier(self, time: float) -> None:
        """Register a future property-change instant for train splitting."""
        insort(self.train_barriers, time)

    @property
    def bandwidth(self) -> float:
        """Link rate in bits per second.  Assignable mid-run (fault windows)."""
        return self._bandwidth

    @bandwidth.setter
    def bandwidth(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"bandwidth must be positive, got {value}")
        self._bandwidth = value
        # Serialization works in bytes; cache the per-byte cost so the
        # per-packet send path does one multiply instead of a division.
        self._seconds_per_byte = 8.0 / value

    def attach(self, device0: "Device", device1: "Device") -> None:
        """Wire the two ends to their devices and register the ports."""
        for end, device in zip(self.ends, (device0, device1)):
            end.device = device
            device.register_port(end)
        end0, end1 = self.ends
        end0._peer_end, end0._peer_device = end1, device1
        end1._peer_end, end1._peer_device = end0, device0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name}, {self.bandwidth / GBPS:g} Gb/s)"

"""Full-duplex point-to-point links with serialization and propagation.

A :class:`Link` joins two devices.  Each direction is independent (full
duplex) and owns a FIFO transmit queue: a packet occupies the transmitter
for ``wire_size * 8 / bandwidth`` seconds, then arrives at the far end
``propagation`` seconds later.  Queueing delay therefore emerges naturally
when a device offers packets faster than the link drains them — this is
what makes the parameter-server's single ingress link the bottleneck the
paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .events import Simulator
from .packets import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Device

__all__ = ["Link", "LinkEnd", "GBPS", "DEFAULT_PROPAGATION"]

GBPS = 1e9  # bits per second
#: One-way propagation for an in-rack copper/fiber run (~100 ns, i.e. ~20 m).
DEFAULT_PROPAGATION = 100e-9


class LinkEnd:
    """One attachment point of a :class:`Link`.

    Devices hold ``LinkEnd`` objects as their "ports" and call
    :meth:`send` to transmit toward the peer device.
    """

    def __init__(self, link: "Link", index: int) -> None:
        self.link = link
        self.index = index
        self.device: Optional["Device"] = None
        self._busy_until = 0.0
        self._queued_packets = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Cumulative seconds this transmitter spent serializing.
        self.busy_time = 0.0

    @property
    def peer(self) -> "LinkEnd":
        """The opposite end of the link."""
        return self.link.ends[1 - self.index]

    @property
    def peer_device(self) -> "Device":
        device = self.peer.device
        if device is None:
            raise RuntimeError(f"{self.link} end {1 - self.index} is unattached")
        return device

    @property
    def queue_depth(self) -> int:
        """Packets queued or in flight on this transmitter right now."""
        return self._queued_packets

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def send(self, packet: Packet) -> float:
        """Transmit ``packet`` toward the peer; returns its arrival time.

        The transmitter serializes packets back to back in FIFO order.
        """
        sim = self.link.sim
        if packet.created_at is None:
            packet.created_at = sim.now
        start = max(sim.now, self._busy_until)
        serialization = packet.wire_size * 8.0 / self.link.bandwidth
        self._busy_until = start + serialization
        self.busy_time += serialization
        arrival = self._busy_until + self.link.propagation
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size
        self._queued_packets += 1
        packet.hops += 1
        link = self.link
        dropped = (
            link.loss_rate > 0.0 and link.loss_rng.random() < link.loss_rate
        )
        telemetry = sim.telemetry
        if telemetry.enabled:
            telemetry.inc("link.tx_packets", 1, link=link.name)
            telemetry.inc("link.tx_bytes", packet.wire_size, link=link.name)
            telemetry.set_gauge(
                "link.queue_depth", self._queued_packets, link=link.name
            )

        def deliver() -> None:
            self._queued_packets -= 1
            # ``telemetry`` is captured from send time; the hub is fixed
            # for a simulator's lifetime, so this stays current.
            if telemetry.enabled:
                telemetry.set_gauge(
                    "link.queue_depth", self._queued_packets, link=link.name
                )
                if dropped:
                    telemetry.inc("link.packets_dropped", 1, link=link.name)
            if dropped:
                link.dropped_packets += 1
                return
            self.peer_device.handle_packet(packet, self.peer)

        sim.schedule_at(arrival, deliver, name=f"deliver:{packet.packet_id}")
        return arrival

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        owner = self.device.name if self.device else "?"
        return f"LinkEnd({owner} on {self.link.name})"


class Link:
    """A bidirectional link with symmetric bandwidth and propagation delay.

    ``loss_rate`` injects independent per-packet drops (for the
    loss-recovery tests; the paper notes packet loss "is uncommon in the
    cluster environment" — the default is lossless).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 10 * GBPS,
        propagation: float = DEFAULT_PROPAGATION,
        name: str = "",
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if propagation < 0:
            raise ValueError(f"propagation must be >= 0, got {propagation}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.name = name or f"link{id(self):x}"
        self.loss_rate = loss_rate
        self.loss_rng = np.random.default_rng(loss_seed)
        self.dropped_packets = 0
        self.ends = (LinkEnd(self, 0), LinkEnd(self, 1))

    def attach(self, device0: "Device", device1: "Device") -> None:
        """Wire the two ends to their devices and register the ports."""
        for end, device in zip(self.ends, (device0, device1)):
            end.device = device
            device.register_port(end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name}, {self.bandwidth / GBPS:g} Gb/s)"

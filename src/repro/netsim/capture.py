"""Packet capture: a pcap-style tracer for simulated devices.

Attach a :class:`PacketCapture` to any device to record the packets it
receives (optionally filtered), for debugging and for the experiments
that reason about traffic composition — e.g. verifying that iSwitch
control traffic is negligible next to gradient data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .node import Device
from .packets import Packet

__all__ = ["CapturedPacket", "PacketCapture"]

PacketFilter = Callable[[Packet], bool]


@dataclass(frozen=True)
class CapturedPacket:
    """One trace record (sizes in wire bytes, time in seconds)."""

    time: float
    src: str
    dst: str
    tos: int
    dst_port: int
    wire_size: int
    payload_size: int
    frame_count: int


class PacketCapture:
    """Records packets arriving at a device.

    Wraps the device's ``handle_packet`` — the capture sees exactly what
    the device sees, in order, including packets the device then drops.
    """

    def __init__(
        self,
        device: Device,
        packet_filter: Optional[PacketFilter] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.device = device
        self.packet_filter = packet_filter
        self.max_records = max_records
        self.records: List[CapturedPacket] = []
        self.dropped_records = 0
        self._inner = device.handle_packet
        device.handle_packet = self._tap  # type: ignore[method-assign]
        self._inner_train = getattr(device, "handle_train", None)
        if self._inner_train is not None:
            device.handle_train = self._tap_train  # type: ignore[method-assign]

    def _record(self, packet: Packet, time: float) -> None:
        if self.packet_filter is None or self.packet_filter(packet):
            if self.max_records is None or len(self.records) < self.max_records:
                self.records.append(
                    CapturedPacket(
                        time=time,
                        src=packet.src,
                        dst=packet.dst,
                        tos=packet.tos,
                        dst_port=packet.dst_port,
                        wire_size=packet.wire_size,
                        payload_size=packet.payload_size,
                        frame_count=packet.frame_count,
                    )
                )
            else:
                self.dropped_records += 1

    def _tap(self, packet: Packet, in_port) -> None:
        self._record(packet, self.device.sim.now)
        self._inner(packet, in_port)

    def _tap_train(self, train, in_port) -> None:
        # Batched transport delivers the whole train in one event at the
        # last arrival; the trace records each packet at its *carried*
        # per-packet arrival so captures are transport-independent.
        arrivals = train.arrivals
        for i, packet in enumerate(train.packets):
            self._record(packet, float(arrivals[i]))
        self._inner_train(train, in_port)

    def detach(self) -> None:
        """Stop capturing and restore the device's original handler."""
        self.device.handle_packet = self._inner  # type: ignore[method-assign]
        if self._inner_train is not None:
            self.device.handle_train = self._inner_train  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(r.wire_size for r in self.records)

    def by_tos(self) -> dict:
        """Wire bytes per ToS value."""
        out: dict = {}
        for record in self.records:
            out[record.tos] = out.get(record.tos, 0) + record.wire_size
        return out

    def between(self, start: float, stop: float) -> List[CapturedPacket]:
        return [r for r in self.records if start <= r.time < stop]

    def __len__(self) -> int:
        return len(self.records)

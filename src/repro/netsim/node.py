"""Devices: the base class plus the end-host model.

A :class:`Device` is anything a link can attach to.  :class:`Host` models a
server with a single NIC; the switches live in
:mod:`repro.netsim.switch` and :mod:`repro.core.switch`.

Hosts dispatch received packets to *protocol handlers* registered by UDP
destination port, which is how the distributed-training strategies layer
their traffic over the simulated network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .events import Simulator
from .link import LinkEnd
from .packets import Packet, PacketTrain

__all__ = ["Device", "Host", "PacketHandler", "TrainHandler"]

PacketHandler = Callable[[Packet], None]
TrainHandler = Callable[[PacketTrain], None]


class Device:
    """Base class for anything attached to links."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[LinkEnd] = []
        self.rx_packets = 0
        self.rx_bytes = 0

    def register_port(self, port: LinkEnd) -> None:
        """Called by :meth:`Link.attach` when a link is wired to us."""
        self.ports.append(port)

    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        """Receive one packet from a link.  Subclasses must override."""
        raise NotImplementedError

    def handle_train(self, train: PacketTrain, in_port: LinkEnd) -> None:
        """Receive a packet train in one call (batched transport).

        The base implementation unrolls to :meth:`handle_packet`; devices
        with a cheaper batch path (hosts, switches) override it.
        """
        for packet in train.packets:
            self.handle_packet(packet, in_port)

    def _count_rx(self, packet: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Host(Device):
    """An end host (worker or parameter-server node) with one NIC.

    Outbound packets always use the single uplink.  Inbound packets are
    dispatched by UDP destination port; a default handler catches the rest.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: Dict[int, PacketHandler] = {}
        self._train_handlers: Dict[int, TrainHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        self._uplink: Optional[LinkEnd] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def uplink(self) -> LinkEnd:
        if self._uplink is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        return self._uplink

    def register_port(self, port: LinkEnd) -> None:
        if self.ports:
            raise RuntimeError(
                f"host {self.name} already has a NIC; hosts are single-homed"
            )
        super().register_port(port)
        self._uplink = port

    # ------------------------------------------------------------------
    # Protocol dispatch
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: PacketHandler) -> None:
        """Register ``handler`` for packets whose UDP dst port is ``port``."""
        if port in self._handlers:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._handlers[port] = handler

    def unbind(self, port: int) -> None:
        self._handlers.pop(port, None)
        self._train_handlers.pop(port, None)

    def bind_default(self, handler: PacketHandler) -> None:
        """Register the catch-all handler for unbound ports."""
        self._default_handler = handler

    def bind_train(self, port: int, handler: TrainHandler) -> None:
        """Register a whole-train handler for UDP dst port ``port``.

        Complements :meth:`bind` (which must also be bound for the port):
        when a :class:`PacketTrain` arrives whose packets all target
        ``port``, the train handler gets it in one call; mixed trains and
        individual packets fall back to the per-packet handler.
        """
        self._train_handlers[port] = handler

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> float:
        """Transmit a packet out of the NIC; returns the link-arrival time."""
        uplink = self._uplink
        if uplink is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        return uplink.send(packet)

    def send_burst(self, packets: List[Packet]) -> float:
        """Offer a same-destination burst to the NIC as one packet train."""
        uplink = self._uplink
        if uplink is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        return uplink.send_train(packets)

    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size
        handler = self._handlers.get(packet.dst_port, self._default_handler)
        if handler is not None:
            handler(packet)
        # Packets with no handler are dropped silently, like a closed UDP
        # socket; tests assert on rx counters to detect misrouting.

    def handle_train(self, train: PacketTrain, in_port: LinkEnd) -> None:
        packets = train.packets
        self.rx_packets += len(packets)
        nbytes = 0
        port = packets[0].dst_port
        uniform = True
        for packet in packets:
            nbytes += packet.wire_size
            if packet.dst_port != port:
                uniform = False
        self.rx_bytes += nbytes
        train_handler = self._train_handlers.get(port)
        if train_handler is not None and uniform:
            train_handler(train)
            return
        default = self._default_handler
        handlers = self._handlers
        for packet in packets:
            handler = handlers.get(packet.dst_port, default)
            if handler is not None:
                handler(packet)

"""Devices: the base class plus the end-host model.

A :class:`Device` is anything a link can attach to.  :class:`Host` models a
server with a single NIC; the switches live in
:mod:`repro.netsim.switch` and :mod:`repro.core.switch`.

Hosts dispatch received packets to *protocol handlers* registered by UDP
destination port, which is how the distributed-training strategies layer
their traffic over the simulated network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .events import Simulator
from .link import LinkEnd
from .packets import Packet

__all__ = ["Device", "Host", "PacketHandler"]

PacketHandler = Callable[[Packet], None]


class Device:
    """Base class for anything attached to links."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[LinkEnd] = []
        self.rx_packets = 0
        self.rx_bytes = 0

    def register_port(self, port: LinkEnd) -> None:
        """Called by :meth:`Link.attach` when a link is wired to us."""
        self.ports.append(port)

    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        """Receive one packet from a link.  Subclasses must override."""
        raise NotImplementedError

    def _count_rx(self, packet: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Host(Device):
    """An end host (worker or parameter-server node) with one NIC.

    Outbound packets always use the single uplink.  Inbound packets are
    dispatched by UDP destination port; a default handler catches the rest.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: Dict[int, PacketHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        self._uplink: Optional[LinkEnd] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def uplink(self) -> LinkEnd:
        if self._uplink is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        return self._uplink

    def register_port(self, port: LinkEnd) -> None:
        if self.ports:
            raise RuntimeError(
                f"host {self.name} already has a NIC; hosts are single-homed"
            )
        super().register_port(port)
        self._uplink = port

    # ------------------------------------------------------------------
    # Protocol dispatch
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: PacketHandler) -> None:
        """Register ``handler`` for packets whose UDP dst port is ``port``."""
        if port in self._handlers:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._handlers[port] = handler

    def unbind(self, port: int) -> None:
        self._handlers.pop(port, None)

    def bind_default(self, handler: PacketHandler) -> None:
        """Register the catch-all handler for unbound ports."""
        self._default_handler = handler

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> float:
        """Transmit a packet out of the NIC; returns the link-arrival time."""
        uplink = self._uplink
        if uplink is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        return uplink.send(packet)

    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size
        handler = self._handlers.get(packet.dst_port, self._default_handler)
        if handler is not None:
            handler(packet)
        # Packets with no handler are dropped silently, like a closed UDP
        # socket; tests assert on rx counters to detect misrouting.

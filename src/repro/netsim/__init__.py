"""Discrete-event network simulator: the substrate under every experiment.

Public surface:

* :class:`Simulator` — the event loop and simulated clock.
* :class:`Packet` — byte-accurate Ethernet/IP/UDP packets.
* :class:`Link`, :class:`Host`, :class:`EthernetSwitch` — the fabric.
* :func:`build_star`, :func:`build_rack_tree` — the paper's topologies.
"""

from .capture import CapturedPacket, PacketCapture
from .events import Event, SimError, Simulator
from .link import DEFAULT_PROPAGATION, GBPS, Link, LinkEnd
from .node import Device, Host
from .packets import (
    ETHERNET_OVERHEAD,
    IP_HEADER,
    MAX_FRAME,
    MAX_UDP_PAYLOAD,
    MTU,
    UDP_HEADER,
    VLAN_TAG,
    Packet,
)
from .switch import DEFAULT_SWITCH_LATENCY, EthernetSwitch
from .topology import Network, build_rack_tree, build_star, build_three_tier
from .trace import LatencyStats, TimeSeries

__all__ = [
    "Simulator",
    "Event",
    "SimError",
    "Packet",
    "Link",
    "LinkEnd",
    "Device",
    "Host",
    "EthernetSwitch",
    "Network",
    "build_star",
    "build_rack_tree",
    "build_three_tier",
    "PacketCapture",
    "CapturedPacket",
    "LatencyStats",
    "TimeSeries",
    "GBPS",
    "DEFAULT_PROPAGATION",
    "DEFAULT_SWITCH_LATENCY",
    "ETHERNET_OVERHEAD",
    "VLAN_TAG",
    "IP_HEADER",
    "UDP_HEADER",
    "MTU",
    "MAX_FRAME",
    "MAX_UDP_PAYLOAD",
]

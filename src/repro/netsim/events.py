"""Discrete-event simulation engine.

The whole iSwitch reproduction runs on a single-threaded discrete-event
simulator.  Time is a float measured in **seconds**.  Components schedule
callbacks at absolute or relative simulated times; the :class:`Simulator`
pops them in timestamp order and invokes them.

Determinism
-----------
Events scheduled for the same timestamp are executed in scheduling order
(FIFO), which makes every simulation run bit-reproducible for a fixed seed.
This matters because the asynchronous-training experiments derive gradient
*staleness* from event ordering.

Performance
-----------
This module is the hottest code in the repository (every packet costs
several events), so it trades a little elegance for speed:

* the heap stores plain tuples — ``(time, seq, event)`` for cancellable
  events and ``(time, seq, callback, kind)`` for fire-and-forget ones
  (:meth:`Simulator.schedule_fire`) — so every sift compares C-level
  tuples instead of calling a Python ``__lt__``; the ``seq`` tie-break
  is globally unique, so comparison never reaches the third element and
  the two tuple shapes coexist safely;
* the per-packet paths (delivery, forwarding, aggregation completion)
  use the fire-and-forget shape, which skips the :class:`Event`
  allocation entirely;
* :class:`Event` uses ``__slots__``;
* cancelled events use lazy deletion (skipped when popped), but a run
  that cancels heavily — loss-recovery watchdogs, mostly — is compacted
  in one batched sweep once cancelled entries outnumber live ones, so
  the heap never silts up.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..telemetry.hub import NULL_HUB, TelemetryHub

__all__ = [
    "Event",
    "Simulator",
    "CalendarSimulator",
    "SimError",
    "make_simulator",
]

#: Compact the heap when at least this many cancelled events have
#: accumulated *and* they outnumber the live ones.
_SWEEP_MIN_CANCELLED = 64


class SimError(RuntimeError):
    """Raised for illegal simulator operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    The owning simulator orders events by ``(time, seq)`` so that ties are
    broken by insertion order.  ``cancelled`` events stay in the heap but
    are skipped when popped (lazy deletion, batch-swept under pressure).
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "_cancel_cell")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        #: The owning simulator's cancelled-event counter (a one-element
        #: list, shared so ``cancel`` stays O(1) with no back-reference to
        #: the simulator itself).  ``None`` once the event left the heap.
        self._cancel_cell: Optional[List[int]] = None

    def cancel(self) -> None:
        """Mark this event so the simulator will skip it."""
        if not self.cancelled:
            self.cancelled = True
            cell = self._cancel_cell
            if cell is not None:
                cell[0] += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}, {self.name!r}{state})"


class Simulator:
    """A minimal but complete discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    #: When true, senders that support it coalesce same-destination bursts
    #: into :class:`~repro.netsim.packets.PacketTrain` transmissions (one
    #: delivery event per train instead of one per packet).  Off by
    #: default: the per-packet path is the reference model and the golden
    #: regressions pin its exact event interleaving.  The runner flips
    #: this from ``ExperimentConfig.transport``.
    batch_transport = False

    def __init__(self, telemetry: Optional[TelemetryHub] = None) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = [0]  # cancelled events still sitting in the heap
        self._processed = 0
        self._running = False
        #: The run's telemetry hub; the shared disabled hub by default, so
        #: every component can unconditionally do ``sim.telemetry.inc(...)``
        #: behind an ``enabled`` check at zero configuration cost.
        self.telemetry: TelemetryHub = NULL_HUB
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, hub: TelemetryHub) -> None:
        """Install ``hub`` as this run's telemetry sink and time source."""
        self.telemetry = hub
        hub.bind_clock(lambda: self._now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (excluding cancelled ones)."""
        return len(self._heap) - self._cancelled[0]

    def count_batched(self, n: int, kind: str) -> None:
        """Account ``n`` logical events coalesced into the current one.

        The batched transport path replaces N per-packet events (delivery,
        forwarding, result emission) with one physical train event.  The
        components that coalesce call this so ``processed_events`` and the
        ``sim.events_processed`` telemetry counter keep meaning *logical*
        per-packet work — benchmark events/s rates stay comparable across
        transports, only the wall-clock cost per logical event changes.
        """
        if n <= 0:
            return
        self._processed += n
        if self.telemetry.enabled:
            self.telemetry.inc("sim.events_processed", n, kind=kind)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        # Body of schedule_at, inlined: this is called once or more per
        # simulated packet and the extra frame is measurable.
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, name)
        event._cancel_cell = self._cancelled
        heapq.heappush(self._heap, (time, seq, event))
        cancelled = self._cancelled[0]
        if cancelled >= _SWEEP_MIN_CANCELLED and 2 * cancelled >= len(self._heap):
            self._sweep_cancelled()
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, name)
        event._cancel_cell = self._cancelled
        heapq.heappush(self._heap, (time, seq, event))
        cancelled = self._cancelled[0]
        if cancelled >= _SWEEP_MIN_CANCELLED and 2 * cancelled >= len(self._heap):
            self._sweep_cancelled()
        return event

    def schedule_fire(
        self, delay: float, callback: Callable[[], None], kind: str = ""
    ) -> None:
        """Schedule a fire-and-forget callback ``delay`` seconds from now.

        Unlike :meth:`schedule` no :class:`Event` is created and nothing is
        returned, so the callback **cannot be cancelled**.  This is the
        per-packet path (delivery, forwarding, result emission), where the
        allocation per event is measurable; ``kind`` is the telemetry
        dispatch label (a plain prefix such as ``"deliver"``, never a
        per-packet string).
        """
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self._now + delay, seq, callback, kind))

    def schedule_fire_at(
        self, time: float, callback: Callable[[], None], kind: str = ""
    ) -> None:
        """Absolute-time variant of :meth:`schedule_fire`."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback, kind))

    def _sweep_cancelled(self) -> None:
        """Batch-drop every cancelled event and re-heapify the survivors."""
        self._heap = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled[0] = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        heap = self._heap
        while heap:
            head = heapq.heappop(heap)
            event = head[2]
            if event.__class__ is Event:
                if event.cancelled:
                    self._cancelled[0] -= 1
                    event._cancel_cell = None
                    continue
                event._cancel_cell = None
                callback = event.callback
                # Label by the name prefix (e.g. "lgc", "deliver", "fwd")
                # so dispatch counts stay low-cardinality.
                kind = event.name.split(":", 1)[0] if event.name else "anonymous"
            else:
                callback = event
                kind = head[3] or "anonymous"
            self._now = head[0]
            self._processed += 1
            if self.telemetry.enabled:
                self.telemetry.inc("sim.events_processed", 1, kind=kind)
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run(until=...)``
        calls observe a monotone clock.
        """
        if self._running:
            raise SimError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        cancelled = self._cancelled
        pop = heapq.heappop
        telemetry = self.telemetry  # fixed for the simulator's lifetime
        try:
            if until is None and max_events is None:
                # Fast path for drain-the-queue runs (the training loops):
                # pop directly instead of peek-then-pop.
                while heap:
                    head = pop(heap)
                    event = head[2]
                    if event.__class__ is Event:
                        if event.cancelled:
                            cancelled[0] -= 1
                            event._cancel_cell = None
                            continue
                        event._cancel_cell = None
                        self._now = head[0]
                        self._processed += 1
                        if telemetry.enabled:
                            name = event.name
                            kind = (
                                name.split(":", 1)[0] if name else "anonymous"
                            )
                            telemetry.inc(
                                "sim.events_processed", 1, kind=kind
                            )
                        event.callback()
                    else:
                        self._now = head[0]
                        self._processed += 1
                        if telemetry.enabled:
                            telemetry.inc(
                                "sim.events_processed",
                                1,
                                kind=head[3] or "anonymous",
                            )
                        event()
                return self._now
            executed = 0
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                event = head[2]
                is_event = event.__class__ is Event
                if is_event and event.cancelled:
                    pop(heap)
                    cancelled[0] -= 1
                    event._cancel_cell = None
                    continue
                if until is not None and head[0] > until:
                    break
                pop(heap)
                if is_event:
                    event._cancel_cell = None
                    callback = event.callback
                    name = event.name
                    kind = name.split(":", 1)[0] if name else "anonymous"
                else:
                    callback = event
                    kind = head[3] or "anonymous"
                self._now = head[0]
                self._processed += 1
                if telemetry.enabled:
                    telemetry.inc("sim.events_processed", 1, kind=kind)
                callback()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False

    def _peek(self):
        """Return the next live heap payload (an Event or a bare callback)
        without popping it."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event.__class__ is Event and event.cancelled:
                heapq.heappop(heap)
                self._cancelled[0] -= 1
                event._cancel_cell = None
                continue
            return event
        return None

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._cancelled[0] = 0
        self._now = 0.0
        self._processed = 0


#: Calendar-queue defaults.  Event densities in the training runs sit at
#: ~10⁵–10⁶ events per simulated second, so 1 µs buckets keep the
#: expected bucket occupancy at O(1); 4096 buckets give a ~4 ms wheel
#: horizon, far beyond a round trip, so overflow rebase is rare.
DEFAULT_BUCKET_WIDTH = 1e-6
DEFAULT_N_BUCKETS = 4096


class CalendarSimulator(Simulator):
    """A :class:`Simulator` whose queue is a calendar (bucketed wheel).

    Events land in fixed-width time buckets indexed from a rebased origin;
    each bucket is a tiny binary heap ordered by the same globally unique
    ``(time, seq)`` key the reference heap uses, so dispatch order — and
    therefore every simulation result — is **identical** to
    :class:`Simulator` (the differential property test in
    ``tests/test_calendar_queue.py`` asserts exactly this).  Events beyond
    the wheel horizon wait in an overflow heap; when the wheel drains, the
    wheel is rebased at the overflow's earliest event and refilled.

    The win over one big heap is that push/pop work against heaps of O(1)
    expected size instead of O(pending), which matters once batched
    transport concentrates pending events into a short time horizon.
    """

    def __init__(
        self,
        telemetry: Optional[TelemetryHub] = None,
        bucket_width: float = DEFAULT_BUCKET_WIDTH,
        n_buckets: int = DEFAULT_N_BUCKETS,
    ) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        if n_buckets < 2:
            raise ValueError(f"n_buckets must be >= 2, got {n_buckets}")
        super().__init__(telemetry)
        self._width = bucket_width
        self._n_buckets = n_buckets
        self._buckets: List[list] = [[] for _ in range(n_buckets)]
        self._cursor = 0
        self._base = 0.0
        self._horizon = n_buckets * bucket_width
        self._overflow: list = []
        self._count = 0

    # ------------------------------------------------------------------
    # Queue primitives
    # ------------------------------------------------------------------
    def _push(self, time: float, entry) -> None:
        # The wheel/overflow boundary MUST be the same comparison _rebase
        # uses (``time < horizon``), not the derived bucket index: the two
        # round differently near the horizon, and a same-timestamp pair
        # split across wheel and overflow would dispatch out of seq order.
        if time >= self._horizon:
            heapq.heappush(self._overflow, entry)
        else:
            index = int((time - self._base) / self._width)
            if index < self._cursor:
                # Guard against float rounding at bucket boundaries: an
                # entry may never land behind the cursor or it would be
                # skipped.
                index = self._cursor
            elif index >= self._n_buckets:
                # Float rounding at the horizon edge; mirror _rebase.
                index = self._n_buckets - 1
            heapq.heappush(self._buckets[index], entry)
        self._count += 1

    def _rebase(self) -> None:
        """Re-anchor the (drained) wheel at the overflow's earliest event."""
        overflow = self._overflow
        self._base = base = overflow[0][0]
        self._cursor = 0
        self._horizon = horizon = base + self._n_buckets * self._width
        width = self._width
        buckets = self._buckets
        last = self._n_buckets - 1
        while overflow and overflow[0][0] < horizon:
            entry = heapq.heappop(overflow)
            index = int((entry[0] - base) / width)
            if index > last:  # float rounding at the horizon edge
                index = last
            heapq.heappush(buckets[index], entry)

    def _peek_entry(self):
        """Return the earliest live entry without removing it (or None).

        Lazily discards cancelled events encountered at bucket heads and
        advances the cursor over empty buckets, rebasing from overflow
        when the wheel is exhausted.
        """
        buckets = self._buckets
        n_buckets = self._n_buckets
        while True:
            cursor = self._cursor
            while cursor < n_buckets:
                bucket = buckets[cursor]
                while bucket:
                    head = bucket[0]
                    event = head[2]
                    if event.__class__ is Event and event.cancelled:
                        heapq.heappop(bucket)
                        self._count -= 1
                        self._cancelled[0] -= 1
                        event._cancel_cell = None
                        continue
                    self._cursor = cursor
                    return head
                cursor += 1
            self._cursor = cursor
            if not self._overflow:
                return None
            self._rebase()

    def _pop_head(self):
        """Remove and return the entry :meth:`_peek_entry` just surfaced."""
        entry = heapq.heappop(self._buckets[self._cursor])
        self._count -= 1
        return entry

    # ------------------------------------------------------------------
    # Scheduling overrides
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, name)
        event._cancel_cell = self._cancelled
        self._push(time, (time, seq, event))
        cancelled = self._cancelled[0]
        if cancelled >= _SWEEP_MIN_CANCELLED and 2 * cancelled >= self._count:
            self._sweep_cancelled()
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, name)
        event._cancel_cell = self._cancelled
        self._push(time, (time, seq, event))
        cancelled = self._cancelled[0]
        if cancelled >= _SWEEP_MIN_CANCELLED and 2 * cancelled >= self._count:
            self._sweep_cancelled()
        return event

    def schedule_fire(
        self, delay: float, callback: Callable[[], None], kind: str = ""
    ) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        self._push(time, (time, seq, callback, kind))

    def schedule_fire_at(
        self, time: float, callback: Callable[[], None], kind: str = ""
    ) -> None:
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        seq = self._seq
        self._seq = seq + 1
        self._push(time, (time, seq, callback, kind))

    def _sweep_cancelled(self) -> None:
        survivors = 0
        for bucket in self._buckets:
            if not bucket:
                continue
            bucket[:] = [
                entry
                for entry in bucket
                if entry[2].__class__ is not Event or not entry[2].cancelled
            ]
            heapq.heapify(bucket)
            survivors += len(bucket)
        self._overflow = [
            entry
            for entry in self._overflow
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._overflow)
        self._count = survivors + len(self._overflow)
        self._cancelled[0] = 0

    # ------------------------------------------------------------------
    # Execution overrides
    # ------------------------------------------------------------------
    def _dispatch(self, head) -> None:
        event = head[2]
        if event.__class__ is Event:
            event._cancel_cell = None
            callback = event.callback
            name = event.name
            kind = name.split(":", 1)[0] if name else "anonymous"
        else:
            callback = event
            kind = head[3] or "anonymous"
        self._now = head[0]
        self._processed += 1
        if self.telemetry.enabled:
            self.telemetry.inc("sim.events_processed", 1, kind=kind)
        callback()

    def step(self) -> bool:
        head = self._peek_entry()
        if head is None:
            return False
        self._pop_head()
        self._dispatch(head)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        if self._running:
            raise SimError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    break
                head = self._peek_entry()
                if head is None:
                    break
                if until is not None and head[0] > until:
                    break
                self._pop_head()
                self._dispatch(head)
                executed += 1
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False

    def _peek(self):
        head = self._peek_entry()
        return head[2] if head is not None else None

    @property
    def pending_events(self) -> int:
        return self._count - self._cancelled[0]

    def reset(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._overflow.clear()
        self._cursor = 0
        self._base = 0.0
        self._horizon = self._n_buckets * self._width
        self._count = 0
        self._cancelled[0] = 0
        self._now = 0.0
        self._processed = 0


def make_simulator(
    scheduler: str = "heap",
    telemetry: Optional[TelemetryHub] = None,
    **kwargs,
) -> Simulator:
    """Build a simulator with the requested scheduler backend.

    ``scheduler`` is ``"heap"`` (the reference binary heap) or
    ``"calendar"`` (the bucketed calendar queue); both dispatch events in
    exactly the same order.  Extra keyword arguments are passed to the
    calendar queue (``bucket_width``, ``n_buckets``).
    """
    if scheduler == "heap":
        if kwargs:
            raise ValueError(
                f"heap scheduler takes no options, got {sorted(kwargs)}"
            )
        return Simulator(telemetry=telemetry)
    if scheduler == "calendar":
        return CalendarSimulator(telemetry=telemetry, **kwargs)
    raise ValueError(
        f"unknown scheduler {scheduler!r} (choose 'heap' or 'calendar')"
    )

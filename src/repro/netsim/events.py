"""Discrete-event simulation engine.

The whole iSwitch reproduction runs on a single-threaded discrete-event
simulator.  Time is a float measured in **seconds**.  Components schedule
callbacks at absolute or relative simulated times; the :class:`Simulator`
pops them in timestamp order and invokes them.

Determinism
-----------
Events scheduled for the same timestamp are executed in scheduling order
(FIFO), which makes every simulation run bit-reproducible for a fixed seed.
This matters because the asynchronous-training experiments derive gradient
*staleness* from event ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..telemetry.hub import NULL_HUB, TelemetryHub

__all__ = ["Event", "Simulator", "SimError"]


class SimError(RuntimeError):
    """Raised for illegal simulator operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` so that ties are broken by
    insertion order.  ``cancelled`` events stay in the heap but are skipped
    when popped (lazy deletion).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the simulator will skip it."""
        self.cancelled = True


class Simulator:
    """A minimal but complete discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, telemetry: Optional[TelemetryHub] = None) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False
        #: The run's telemetry hub; the shared disabled hub by default, so
        #: every component can unconditionally do ``sim.telemetry.inc(...)``
        #: behind an ``enabled`` check at zero configuration cost.
        self.telemetry: TelemetryHub = NULL_HUB
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, hub: TelemetryHub) -> None:
        """Install ``hub`` as this run's telemetry sink and time source."""
        self.telemetry = hub
        hub.bind_clock(lambda: self._now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._heap if not e.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, name)

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self.telemetry.enabled:
                # Label by the name prefix (e.g. "lgc", "deliver", "fwd")
                # so dispatch counts stay low-cardinality.
                kind = event.name.split(":", 1)[0] if event.name else "anonymous"
                self.telemetry.inc("sim.events_processed", 1, kind=kind)
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run(until=...)``
        calls observe a monotone clock.
        """
        if self._running:
            raise SimError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping it."""
        while self._heap:
            if self._heap[0].cancelled:
                heapq.heappop(self._heap)
                continue
            return self._heap[0]
        return None

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._processed = 0

"""Per-algorithm workload profiles calibrated to the paper (Tables 1/4/5).

A :class:`WorkloadProfile` carries everything the timing simulation needs
to stand in for the paper's GPU cluster:

* ``model_bytes`` — the wire size of one gradient/weight vector.  These
  are the paper's Table 1 model sizes (6.41 MB / 3.31 MB / 40.02 KB /
  157.52 KB), used verbatim so communication times are faithful even
  though the *convergence* experiments train much smaller NumPy models.
* ``compute_time`` — the local-gradient-computing (LGC) duration of one
  iteration, i.e. everything Figure 4 attributes to the worker: agent
  action, environment reaction, buffer sampling, memory allocation,
  forward pass, backward pass, GPU copy.  Derived from Table 4:
  per-iteration PS time × (1 − aggregation share).
* ``weight_update_time`` — the local weight update (LWU) on a worker.
* ``compute_breakdown`` — how ``compute_time`` splits across Figure 4's
  component labels (used by the Figure 4 / Figure 12 reproductions).
* ``paper_*`` — the iteration counts and reference timings the benchmark
  harness prints next to measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "get_profile",
    "BREAKDOWN_COMPONENTS",
    "KB",
    "MB",
]

KB = 1024
MB = 1024 * KB

#: Figure 4's per-iteration components, in display order.
BREAKDOWN_COMPONENTS = (
    "agent_action",
    "environ_react",
    "buffer_sampling",
    "memory_alloc",
    "forward_pass",
    "backward_pass",
    "gpu_copy",
    "grad_aggregation",
    "weight_update",
    "others",
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Calibrated stand-in for one of the paper's four benchmarks."""

    name: str
    environment: str
    model_bytes: int
    #: Sync training iterations to convergence (Tables 1 and 4).
    paper_iterations: int
    #: LGC duration per iteration on a worker (seconds).
    compute_time: float
    #: LWU duration per iteration on a worker (seconds).
    weight_update_time: float
    #: Fraction of ``compute_time`` per Figure 4 compute component
    #: (everything except grad_aggregation / weight_update / others).
    compute_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Multiplicative jitter sigma on LGC durations (stragglers).
    compute_jitter: float = 0.03
    #: How many separate tensor exchanges the framework performs per
    #: iteration (DDPG's "dual model" ships actor and critic separately).
    message_count: int = 1
    #: Multiplier on the server-side weight-update cost (DDPG's server
    #: replica steps two optimizers and soft-updates two target networks,
    #: roughly tripling the per-update work).
    update_cost_factor: float = 1.0
    #: Async iterations from Table 5: {"ps": ..., "isw": ...}.
    paper_async_iterations: Dict[str, int] = field(default_factory=dict)
    #: Paper per-iteration milliseconds for reference printing:
    #: sync {"ps","ar","isw"} and async {"ps","isw"}.
    paper_sync_iter_ms: Dict[str, float] = field(default_factory=dict)
    paper_async_iter_ms: Dict[str, float] = field(default_factory=dict)
    #: Paper end-to-end hours (Table 4 / Table 5).
    paper_sync_hours: Dict[str, float] = field(default_factory=dict)
    paper_async_hours: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model_bytes < 4:
            raise ValueError(f"model_bytes too small: {self.model_bytes}")
        if self.compute_time <= 0 or self.weight_update_time < 0:
            raise ValueError("durations must be positive")

    @property
    def n_elements(self) -> int:
        """float32 elements in the wire vector."""
        return self.model_bytes // 4


# The compute split below follows Figure 4's qualitative shape: replay
# algorithms (DQN, DDPG) spend visibly on buffer sampling; on-policy
# rollouts (A2C, PPO) spend more on environment interaction; backward
# pass dominates the NN share everywhere.
_DQN_SPLIT = {
    "agent_action": 0.10,
    "environ_react": 0.12,
    "buffer_sampling": 0.16,
    "memory_alloc": 0.08,
    "forward_pass": 0.16,
    "backward_pass": 0.26,
    "gpu_copy": 0.12,
}
_A2C_SPLIT = {
    "agent_action": 0.14,
    "environ_react": 0.22,
    "buffer_sampling": 0.04,
    "memory_alloc": 0.08,
    "forward_pass": 0.16,
    "backward_pass": 0.26,
    "gpu_copy": 0.10,
}
_PPO_SPLIT = {
    "agent_action": 0.14,
    "environ_react": 0.26,
    "buffer_sampling": 0.04,
    "memory_alloc": 0.06,
    "forward_pass": 0.16,
    "backward_pass": 0.26,
    "gpu_copy": 0.08,
}
_DDPG_SPLIT = {
    "agent_action": 0.10,
    "environ_react": 0.14,
    "buffer_sampling": 0.14,
    "memory_alloc": 0.08,
    "forward_pass": 0.16,
    "backward_pass": 0.28,
    "gpu_copy": 0.10,
}


_SYNTH_SPLIT = {
    "agent_action": 0.10,
    "environ_react": 0.10,
    "buffer_sampling": 0.10,
    "memory_alloc": 0.10,
    "forward_pass": 0.25,
    "backward_pass": 0.25,
    "gpu_copy": 0.10,
}


PROFILES: Dict[str, WorkloadProfile] = {
    "dqn": WorkloadProfile(
        name="dqn",
        environment="Atari Pong (GridPong stand-in)",
        model_bytes=int(6.41 * MB),
        paper_iterations=1_400_000,
        compute_time=11.5e-3,
        weight_update_time=1.0e-3,
        compute_breakdown=_DQN_SPLIT,
        paper_async_iterations={"ps": 6_300_000, "isw": 3_500_000},
        paper_sync_iter_ms={"ps": 81.6, "ar": 41.4, "isw": 22.3},
        paper_async_iter_ms={"ps": 24.88, "isw": 12.07},
        paper_sync_hours={"ps": 31.72, "ar": 16.08, "isw": 8.66},
        paper_async_hours={"ps": 43.54, "isw": 11.74},
    ),
    "a2c": WorkloadProfile(
        name="a2c",
        environment="Atari Qbert (GridQbert stand-in)",
        model_bytes=int(3.31 * MB),
        paper_iterations=200_000,
        compute_time=13.5e-3,
        weight_update_time=0.8e-3,
        compute_breakdown=_A2C_SPLIT,
        paper_async_iterations={"ps": 1_200_000, "isw": 400_000},
        paper_sync_iter_ms={"ps": 51.7, "ar": 32.0, "isw": 20.2},
        paper_async_iter_ms={"ps": 13.13, "isw": 12.53},
        paper_sync_hours={"ps": 2.87, "ar": 1.78, "isw": 1.12},
        paper_async_hours={"ps": 4.38, "isw": 1.39},
    ),
    "ppo": WorkloadProfile(
        name="ppo",
        environment="MuJoCo Hopper (Hopper1D stand-in)",
        model_bytes=int(40.02 * KB),
        paper_iterations=80_000,
        compute_time=8.0e-3,
        weight_update_time=0.2e-3,
        compute_breakdown=_PPO_SPLIT,
        paper_async_iterations={"ps": 540_000, "isw": 120_000},
        paper_sync_iter_ms={"ps": 17.6, "ar": 18.9, "isw": 9.9},
        paper_async_iter_ms={"ps": 3.40, "isw": 7.99},
        paper_sync_hours={"ps": 0.39, "ar": 0.42, "isw": 0.22},
        paper_async_hours={"ps": 0.51, "isw": 0.27},
    ),
    "ddpg": WorkloadProfile(
        name="ddpg",
        environment="MuJoCo HalfCheetah (Cheetah1D stand-in)",
        model_bytes=int(157.52 * KB),
        paper_iterations=750_000,
        compute_time=17.0e-3,
        weight_update_time=0.3e-3,
        compute_breakdown=_DDPG_SPLIT,
        message_count=2,
        update_cost_factor=3.0,
        paper_async_iterations={"ps": 3_000_000, "isw": 1_500_000},
        paper_sync_iter_ms={"ps": 38.7, "ar": 43.2, "isw": 21.1},
        paper_async_iter_ms={"ps": 11.58, "isw": 14.89},
        paper_sync_hours={"ps": 8.07, "ar": 9.01, "isw": 4.40},
        paper_async_hours={"ps": 9.65, "isw": 6.20},
    ),
    # Not a paper workload: the benchmark harness's simulator-bound
    # stand-in (repro.rl.synthetic).  The wire vector is the synthetic
    # model's true size — 64 full segments — and the compute times are
    # small so simulated runs are network-dominated, mirroring how the
    # wall-clock harness uses it to time the netsim hot paths.
    "synth": WorkloadProfile(
        name="synth",
        environment="synthetic (simulator benchmark)",
        model_bytes=64 * 366 * 4,
        paper_iterations=1_000,
        compute_time=0.5e-3,
        weight_update_time=0.05e-3,
        compute_breakdown=_SYNTH_SPLIT,
    ),
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up one of the four paper workloads by name."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(PROFILES)}"
        ) from None

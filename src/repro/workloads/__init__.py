"""Workload profiles and host cost models calibrated to the paper."""

from .calibration import DEFAULT_COST_MODEL, CostModel
from .profiles import (
    BREAKDOWN_COMPONENTS,
    KB,
    MB,
    PROFILES,
    WorkloadProfile,
    get_profile,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "WorkloadProfile",
    "PROFILES",
    "get_profile",
    "BREAKDOWN_COMPONENTS",
    "KB",
    "MB",
]

"""Host/server cost model: the constants that anchor simulated time.

The paper measured wall-clock on a real cluster (Titan RTX workers, Xeon
parameter server, 10 GbE, PyTorch + Gloo/OpenMPI).  Link serialization is
simulated byte-accurately by :mod:`repro.netsim`; everything the *hosts*
do with a gradient vector — kernel/UDP stack traversal, memcpy into
framework buffers, the summation on the PS, the optimizer step — is
modelled with the per-byte and per-message constants below.

The defaults were calibrated so the 4-worker simulation lands near the
per-iteration times implied by the paper's Tables 4 and 5 (see
EXPERIMENTS.md for measured-vs-paper deltas).  They are deliberately few
and physically interpretable:

* ``ps_vector_overhead`` — fixed framework cost for the parameter server
  to receive/unpack one gradient *tensor exchange* (PyTorch distributed
  rendezvous + Python dispatch, ~ms).  This is why PS loses even on tiny
  models like PPO's 40 KB.
* ``server_ingest_per_byte`` ≈ 0.9 GB/s effective — CPU-side receive +
  summation on the server.
* ``server_update_per_byte`` (+ fixed) — the server-side optimizer step.
* ``worker_vector_overhead`` / ``worker_ingest_per_byte`` — GPU workers
  ingesting a received vector (faster than the CPU server).
* ``allreduce_step_overhead`` — per-ring-step cost (Gloo chunking,
  synchronization).  2(N−1) steps each pay it, which is what makes
  Ring-AllReduce *lose* to PS on small models (PPO/DDPG), matching the
  paper's crossover.
* ``message_overhead`` — small-packet software latency (pull requests).

Models that the framework exchanges as several tensors per iteration
(DDPG's actor+critic "dual model") multiply the fixed per-vector costs by
``WorkloadProfile.message_count``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Host-side processing constants (seconds, seconds/byte)."""

    #: Fixed PS cost per received/sent gradient-tensor exchange.
    ps_vector_overhead: float = 2.2e-3
    #: PS ingest+summation cost per byte of a received vector.
    server_ingest_per_byte: float = 1.1e-9
    #: Fixed PS weight-update (optimizer) launch cost.
    ps_update_overhead: float = 0.8e-3
    #: PS weight-update cost per parameter byte.
    server_update_per_byte: float = 1.6e-9
    #: Fixed cost for the PS to serve one weight pull (async).
    pull_serve_overhead: float = 0.3e-3
    #: Per-byte cost for the PS to snapshot weights into a reply.
    pull_serve_per_byte: float = 0.5e-9
    #: Fixed worker-side cost to ingest one received vector.
    worker_vector_overhead: float = 0.3e-3
    #: Worker-side per-byte ingest cost.
    worker_ingest_per_byte: float = 0.5e-9
    #: Per-message software overhead on small control transfers.
    message_overhead: float = 150e-6
    #: AllReduce per-step extra overhead (framework chunking, barrier).
    allreduce_step_overhead: float = 1.7e-3
    #: AllReduce per-byte reduction (summation) cost at each step.
    allreduce_reduce_per_byte: float = 1.0e-9

    def server_ingest(self, nbytes: int, messages: int = 1) -> float:
        return (
            messages * self.ps_vector_overhead
            + self.server_ingest_per_byte * nbytes
        )

    def server_update(
        self, nbytes: int, messages: int = 1, factor: float = 1.0
    ) -> float:
        return factor * (
            messages * self.ps_update_overhead
            + self.server_update_per_byte * nbytes
        )

    def pull_serve(self, nbytes: int, messages: int = 1) -> float:
        return (
            messages * self.pull_serve_overhead
            + self.pull_serve_per_byte * nbytes
        )

    def worker_ingest(self, nbytes: int, messages: int = 1) -> float:
        return (
            messages * self.worker_vector_overhead
            + self.worker_ingest_per_byte * nbytes
        )

    def allreduce_step(self, chunk_bytes: int) -> float:
        return (
            self.allreduce_step_overhead
            + self.allreduce_reduce_per_byte * chunk_bytes
        )


DEFAULT_COST_MODEL = CostModel()

"""Wall-clock benchmark harness for the simulator itself.

Everything else in this repository measures *simulated* time; this module
measures how long the simulation takes to run on the host.  It drives a
fixed scenario matrix —

* every registered strategy (sync ps/ar/ar-hd/ps-shard/isw, async ps/isw)
  at 4 and 8 workers on the ``synth`` workload, whose near-zero local
  compute makes runs network-simulation-bound;
* one chaos run replaying ``examples/chaos_demo.json`` through the fault
  injector (worker crash + switch reset + loss burst);
* one multi-job soak run (32 mixed jobs through one shared fabric);
* DQN training runs on the real ``dqn`` workload (compute-bound, unlike
  ``synth``) with fast/legacy compute twins, so the compute fast path
  (DESIGN.md §13) has a measured end-to-end speedup;
* six microbenchmarks isolating the hot paths: event-loop dispatch,
  link transmission, accelerator segment aggregation, and the three
  compute-side paths (vectorized env stepping, ring-buffer replay
  sampling, fused optimizer updates) — each compute micro paired with a
  ``-legacy`` twin, summarized in the report's ``compute_speedups``

— and writes a schema'd JSON report (median/p90 wall seconds, events/sec,
packets/sec, host info).  Training scenarios run the batched transport
(``transport="train"``, ``scheduler="calendar"``); the parameters are
recorded per scenario so reports stay self-describing.

``--baseline`` embeds a previous report plus per-scenario speedups; it
defaults to the newest checked-in result listed in
``benchmarks/results/MANIFEST.json`` (pass ``none`` to disable).
``--max-regression FRAC`` turns the run into a CI gate: exit 1 if the
``sync-isw-n4`` median regressed more than FRAC versus the baseline.
``--profile`` wraps the whole run in cProfile and writes the top
cumulative entries next to the JSON report.

Usage::

    python tools/bench.py --out benchmarks/results/BENCH_PR7.json
    python -m repro bench --smoke --out /tmp/bench.json
    make bench          # full matrix
    make bench-smoke    # one small scenario + tiny micros, CI-friendly

Determinism: simulated results are seeded and bit-reproducible; the wall
times of course are not.  Repeats with median/p90 keep the numbers stable
enough to compare across commits on the same host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "SCHEMA",
    "bench_scenarios",
    "run_benchmark",
    "default_baseline",
    "check_regression",
    "add_bench_arguments",
    "run_bench",
    "main",
]

SCHEMA = "repro-bench-v1"

#: The simulator-bound workload every training scenario uses.
BENCH_WORKLOAD = "synth"
BENCH_SEED = 7

#: Transport granularity / event-queue backend the scenarios run with.
#: "train" is the batched fast path (bit-identical results to "packet";
#: see DESIGN.md §11).  The scheduler stays "heap": the calendar queue
#: ties it on µs-dense iSwitch traffic but loses ~15% on ps/ar, whose
#: ms-scale compute events constantly overflow the wheel (§11.3).
BENCH_TRANSPORT = "train"
BENCH_SCHEDULER = "heap"

#: Default fault plan for the chaos scenario (repo-relative).
CHAOS_PLAN = os.path.join("examples", "chaos_demo.json")

#: Checked-in bench reports live here; MANIFEST.json lists them oldest
#: first, so the last resolvable entry is the default --baseline.
RESULTS_DIR = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "..", "..", "benchmarks", "results",
    )
)

#: The scenarios the --max-regression CI gate compares (present in both
#: the smoke and full matrices, at identical sizes).
GATE_SCENARIO = "sync-isw-n4"
GATE_SCENARIOS = (GATE_SCENARIO, "micro-replay-sample")


def _median(values: Sequence[float]) -> float:
    return float(np.median(np.asarray(values, dtype=np.float64)))


def _p90(values: Sequence[float]) -> float:
    return float(np.quantile(np.asarray(values, dtype=np.float64), 0.9))


def host_info() -> Dict[str, object]:
    """The machine the numbers were taken on (for honest comparisons)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


@dataclass
class Scenario:
    """One benchmark scenario: a callable timed ``repeats`` times.

    ``fn`` runs the scenario once and returns metadata for the report
    (simulated time, event/packet counts, ...); only its wall time is
    measured.  ``setup`` runs before each repeat, untimed.
    """

    name: str
    kind: str  # "training" | "chaos" | "micro"
    fn: Callable[[], Dict[str, object]]
    params: Dict[str, object] = field(default_factory=dict)

    def run(self, repeats: int) -> Dict[str, object]:
        walls: List[float] = []
        meta: Dict[str, object] = {}
        for _ in range(repeats):
            start = time.perf_counter()
            meta = self.fn()
            walls.append(time.perf_counter() - start)
        record: Dict[str, object] = {
            "kind": self.kind,
            **self.params,
            "repeats": repeats,
            "wall_s": [round(w, 6) for w in walls],
            "median_s": round(_median(walls), 6),
            "p90_s": round(_p90(walls), 6),
        }
        record.update(meta)
        median = _median(walls)  # unrounded: sub-µs scenarios round to 0
        for count_key, rate_key in (
            ("events", "events_per_s"),
            ("packets", "packets_per_s"),
            ("segments", "segments_per_s"),
        ):
            if count_key in record and median > 0:
                record[rate_key] = round(record[count_key] / median, 1)
        return record


# ----------------------------------------------------------------------
# Training scenarios
# ----------------------------------------------------------------------
def _compute_context(compute: Optional[str]):
    """The fast/legacy compute toggle a scenario runs under (DESIGN.md §13)."""
    from .nn import use_fast_compute, use_legacy_compute

    if compute == "legacy":
        return use_legacy_compute()
    if compute == "fast":
        return use_fast_compute()
    import contextlib

    return contextlib.nullcontext()


def _training_fn(
    mode: str,
    strategy: str,
    n_workers: int,
    iterations: int,
    fault_plan: Optional[str] = None,
    recovery_timeout: Optional[float] = None,
    transport: str = BENCH_TRANSPORT,
    scheduler: str = BENCH_SCHEDULER,
    workload: str = BENCH_WORKLOAD,
    compute: Optional[str] = None,
    algorithm_overrides: Optional[Dict[str, object]] = None,
) -> Callable[[], Dict[str, object]]:
    from .distributed.config import ExperimentConfig
    from .distributed.runner import run

    def once() -> Dict[str, object]:
        with _compute_context(compute):
            result = run(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode=mode,
                    n_workers=n_workers,
                    iterations=iterations,
                    seed=BENCH_SEED,
                    telemetry=False,
                    fault_plan=fault_plan,
                    recovery_timeout=recovery_timeout,
                    transport=transport,
                    scheduler=scheduler,
                    algorithm_overrides=algorithm_overrides,
                )
            )
        meta: Dict[str, object] = {"sim_time_s": result.elapsed}
        if result.fault_report is not None:
            meta["fault_ok"] = result.fault_report.ok
        return meta

    def counted() -> Dict[str, object]:
        """One untimed instrumented run for event/packet totals."""
        with _compute_context(compute):
            result = run(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode=mode,
                    n_workers=n_workers,
                    iterations=iterations,
                    seed=BENCH_SEED,
                    telemetry=True,
                    fault_plan=fault_plan,
                    recovery_timeout=recovery_timeout,
                    transport=transport,
                    scheduler=scheduler,
                    algorithm_overrides=algorithm_overrides,
                )
            )
        snap = result.telemetry
        return {
            "events": int(snap.value("sim.events_processed")),
            "packets": int(snap.value("link.tx_packets")),
        }

    once.counted = counted  # type: ignore[attr-defined]
    return once


def _training_scenario(
    mode: str, strategy: str, n_workers: int, iterations: int
) -> Scenario:
    return Scenario(
        name=f"{mode}-{strategy}-n{n_workers}",
        kind="training",
        fn=_training_fn(mode, strategy, n_workers, iterations),
        params={
            "mode": mode,
            "strategy": strategy,
            "workload": BENCH_WORKLOAD,
            "n_workers": n_workers,
            "iterations": iterations,
            "seed": BENCH_SEED,
            "transport": BENCH_TRANSPORT,
            "scheduler": BENCH_SCHEDULER,
        },
    )


def _compute_training_scenario(
    workload: str, strategy: str, n_workers: int, iterations: int, compute: str
) -> Scenario:
    """A real-workload training run pinned to one compute path.

    Named ``{workload}-sync-{strategy}-n{N}`` with a ``-legacy`` suffix on
    the legacy-compute twin, so ``compute_speedups`` can pair them up.
    The replay warmup is shrunk so the measured window is the steady-state
    iteration loop, not a one-time env-step burst shared by both paths,
    and env stepping (scalar in both twins — the distributed runner's
    workloads use scalar envs so results stay bit-identical) is trimmed
    to two steps per iteration to keep the shared simulation cost from
    drowning the compute difference under test.
    """
    suffix = "-legacy" if compute == "legacy" else ""
    overrides: Dict[str, object] = {"warmup": 64, "env_steps_per_iter": 2}
    return Scenario(
        name=f"{workload}-sync-{strategy}-n{n_workers}{suffix}",
        kind="training",
        fn=_training_fn(
            "sync", strategy, n_workers, iterations,
            workload=workload, compute=compute,
            algorithm_overrides=overrides,
        ),
        params={
            "mode": "sync",
            "strategy": strategy,
            "workload": workload,
            "compute": compute,
            "n_workers": n_workers,
            "iterations": iterations,
            "seed": BENCH_SEED,
            "transport": BENCH_TRANSPORT,
            "scheduler": BENCH_SCHEDULER,
            "algorithm_overrides": overrides,
        },
    )


def _chaos_scenario(iterations: int) -> Scenario:
    return Scenario(
        name="chaos-isw-n4",
        kind="chaos",
        fn=_training_fn(
            "sync",
            "isw",
            4,
            iterations,
            fault_plan=CHAOS_PLAN,
            recovery_timeout=2e-3,
        ),
        params={
            "mode": "sync",
            "strategy": "isw",
            "workload": BENCH_WORKLOAD,
            "n_workers": 4,
            "iterations": iterations,
            "seed": BENCH_SEED,
            "fault_plan": CHAOS_PLAN,
            "transport": BENCH_TRANSPORT,
            "scheduler": BENCH_SCHEDULER,
        },
    )


def _soak_scenario(n_jobs: int) -> Scenario:
    """Multi-job soak: a mixed job stream through one shared fabric."""

    def once() -> Dict[str, object]:
        from .multitenant.soak import run_soak

        fabric, report = run_soak(
            n_jobs=n_jobs,
            seed=BENCH_SEED,
            telemetry=False,
            transport=BENCH_TRANSPORT,
            scheduler=BENCH_SCHEDULER,
        )
        if not report.ok:
            raise RuntimeError(
                f"soak invariant violated: {report.failed} failed, "
                f"{report.completed} completed, {report.rejected} rejected "
                f"of {report.n_jobs}"
            )
        return {
            "sim_time_s": report.sim_elapsed,
            "events": fabric.sim.processed_events,
            "jobs_completed": report.completed,
            "jobs_rejected": report.rejected,
            "peak_concurrent": report.peak_concurrent,
            "soak_ok": report.ok,
        }

    return Scenario(
        name=f"soak-multijob-n{n_jobs}",
        kind="soak",
        fn=once,
        params={
            "n_jobs": n_jobs,
            "seed": BENCH_SEED,
            "policy": "fair",
            "transport": BENCH_TRANSPORT,
            "scheduler": BENCH_SCHEDULER,
        },
    )


# ----------------------------------------------------------------------
# Microbenchmarks
# ----------------------------------------------------------------------
def _micro_event_dispatch(n_events: int) -> Scenario:
    """Schedule + dispatch ``n_events`` no-op events through the heap."""
    from .netsim.events import Simulator

    def once() -> Dict[str, object]:
        sim = Simulator()
        noop = _noop
        schedule = sim.schedule_at
        for i in range(n_events):
            schedule(i * 1e-6, noop)
        sim.run()
        return {"events": sim.processed_events}

    return Scenario(
        name="micro-event-dispatch",
        kind="micro",
        fn=once,
        params={"n_events": n_events},
    )


def _noop() -> None:
    return None


class _Sink:
    """Minimal packet sink so a bare Link can be exercised in isolation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.received = 0

    def register_port(self, port) -> None:
        pass

    def handle_packet(self, packet, in_port) -> None:
        self.received += 1


def _micro_link_tx(n_packets: int) -> Scenario:
    """Serialize ``n_packets`` full data frames across one 10 Gb/s link."""
    from .netsim.events import Simulator
    from .netsim.link import Link
    from .netsim.packets import MAX_UDP_PAYLOAD, Packet

    def once() -> Dict[str, object]:
        sim = Simulator()
        link = Link(sim, name="bench")
        src, dst = _Sink("src"), _Sink("dst")
        link.attach(src, dst)
        end = link.ends[0]
        for i in range(n_packets):
            end.send(
                Packet(
                    src="src",
                    dst="dst",
                    payload_size=MAX_UDP_PAYLOAD,
                    packet_id=i,
                )
            )
        sim.run()
        if dst.received != n_packets:
            raise RuntimeError(
                f"link micro lost packets: {dst.received}/{n_packets}"
            )
        return {"packets": n_packets}

    return Scenario(
        name="micro-link-tx",
        kind="micro",
        fn=once,
        params={"n_packets": n_packets},
    )


def _micro_accel_agg(rounds: int, n_senders: int = 8) -> Scenario:
    """Aggregate ``rounds`` full synthetic vectors from ``n_senders``."""
    from .core.accelerator import AggregationEngine
    from .core.protocol import SegmentPlan
    from .rl.synthetic import SYNTH_N_PARAMS

    plan = SegmentPlan(SYNTH_N_PARAMS)
    rng = np.random.default_rng(BENCH_SEED)
    vectors = [
        rng.standard_normal(SYNTH_N_PARAMS).astype(np.float32)
        for _ in range(n_senders)
    ]

    def once() -> Dict[str, object]:
        engine = AggregationEngine(threshold=n_senders)
        completions = 0
        contributions = 0
        for round_index in range(rounds):
            for sender, vector in enumerate(vectors):
                for segment in plan.split(
                    vector, round_index, sender=f"w{sender}", commit_id=round_index
                ):
                    contributions += 1
                    if engine.contribute(segment) is not None:
                        completions += 1
        if completions != rounds * plan.n_chunks:
            raise RuntimeError(
                f"accel micro incomplete: {completions} completions"
            )
        return {"segments": contributions}

    return Scenario(
        name="micro-accel-agg",
        kind="micro",
        fn=once,
        params={
            "rounds": rounds,
            "n_senders": n_senders,
            "n_chunks": plan.n_chunks,
        },
    )


def _micro_env_step(steps: int, num_envs: int = 64, legacy: bool = False) -> Scenario:
    """Step a ``num_envs``-wide GridPong batch ``steps`` times.

    The fast variant uses the vectorized kernel; the ``-legacy`` twin runs
    the same batch through the generic scalar-loop :class:`VectorEnv`.
    """
    state: Dict[str, object] = {}

    def once() -> Dict[str, object]:
        from .rl.envs.vector import make_vector_env

        if "env" not in state:
            state["env"] = make_vector_env(
                "gridpong", num_envs, seed=BENCH_SEED, kernel=not legacy
            )
            rng = np.random.default_rng(BENCH_SEED)
            state["actions"] = rng.integers(0, 3, size=(steps, num_envs))
        env = state["env"]
        actions = state["actions"]
        env.reset()
        for t in range(steps):
            env.step(actions[t])
        return {"env_steps": steps * num_envs}

    return Scenario(
        name="micro-env-step" + ("-legacy" if legacy else ""),
        kind="micro",
        fn=once,
        params={"steps": steps, "num_envs": num_envs, "env": "gridpong"},
    )


def _micro_replay_sample(
    fill: int, draws: int, batch: int, legacy: bool = False
) -> Scenario:
    """Draw ``draws`` minibatches from a filled replay buffer.

    The buffer is filled lazily on the first repeat (untimed relative to
    the gate, which compares best samples); only sampling is in the loop.
    """
    state: Dict[str, object] = {}

    def once() -> Dict[str, object]:
        if "buf" not in state:
            from .rl.legacy import LegacyReplayBuffer
            from .rl.replay import ReplayBuffer, Transition

            rng = np.random.default_rng(BENCH_SEED)
            cls = LegacyReplayBuffer if legacy else ReplayBuffer
            buf = cls(fill, rng)
            obs = rng.standard_normal((fill, 8))
            for i in range(fill):
                buf.push(
                    Transition(obs[i], i % 3, float(i), obs[(i + 1) % fill], False)
                )
            state["buf"] = buf
        buf = state["buf"]
        for _ in range(draws):
            buf.sample(batch)
        return {"samples": draws * batch}

    return Scenario(
        name="micro-replay-sample" + ("-legacy" if legacy else ""),
        kind="micro",
        fn=once,
        params={"fill": fill, "draws": draws, "batch": batch},
    )


def _micro_optim_step(steps: int, legacy: bool = False) -> Scenario:
    """Apply ``steps`` Adam updates to an MLP from one flat gradient.

    The fast variant is a single fused ``step_flat``; the legacy twin is
    the scatter path every pre-PR-10 update took (``load_flat_grads``
    into per-parameter ``.grad`` slots, then the per-parameter loop).
    """
    state: Dict[str, object] = {}

    def once() -> Dict[str, object]:
        from .nn import Adam, mlp, use_fast_compute, use_legacy_compute
        from .nn.serialize import load_flat_grads, param_vector_size

        if "opt" not in state:
            ctx = use_legacy_compute if legacy else use_fast_compute
            with ctx():
                model = mlp(
                    [64, 128, 128, 8], rng=np.random.default_rng(BENCH_SEED)
                )
                opt = Adam(model.parameters(), lr=1e-3)
            total = param_vector_size(model)
            grad = np.random.default_rng(BENCH_SEED).standard_normal(total)
            state.update(model=model, opt=opt, grad=grad, total=total)
        model, opt, grad = state["model"], state["opt"], state["grad"]
        if legacy:
            for _ in range(steps):
                load_flat_grads(model, grad)
                opt.step()
        else:
            for _ in range(steps):
                opt.step_flat(grad)
        return {"param_updates": steps * state["total"]}

    return Scenario(
        name="micro-optim-step" + ("-legacy" if legacy else ""),
        kind="micro",
        fn=once,
        params={"steps": steps, "layers": [64, 128, 128, 8]},
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def bench_scenarios(smoke: bool = False) -> List[Scenario]:
    """The scenario matrix, smallest-first inside each kind.

    Smoke mode keeps one small training scenario and shrunken micros so CI
    can exercise the whole harness path in seconds.
    """
    from .distributed.runner import ASYNC_STRATEGIES, SYNC_STRATEGIES

    if smoke:
        return [
            # 30 iterations — the same window as the full matrix — so the
            # --max-regression gate compares like against like.
            _training_scenario("sync", "isw", 4, 30),
            # 200 iterations minimum: the demo plan's worker rejoin lands at
            # t=60 ms and needs live rounds after it to observe recovery.
            _chaos_scenario(200),
            _micro_event_dispatch(5_000),
            _micro_link_tx(2_000),
            _micro_accel_agg(2),
            # Compute micros run full-size in smoke too: micro-replay-sample
            # is a gate scenario, so smoke and full must compare like
            # against like (they are already sub-second).
            _micro_env_step(200, 64),
            _micro_env_step(200, 64, legacy=True),
            _micro_replay_sample(20_000, 2_000, 32),
            _micro_replay_sample(20_000, 2_000, 32, legacy=True),
            _micro_optim_step(2_000),
            _micro_optim_step(2_000, legacy=True),
        ]
    scenarios: List[Scenario] = []
    for n_workers in (4, 8):
        for strategy in SYNC_STRATEGIES:
            scenarios.append(_training_scenario("sync", strategy, n_workers, 30))
        for strategy in ASYNC_STRATEGIES:
            scenarios.append(_training_scenario("async", strategy, n_workers, 60))
    scenarios.append(_chaos_scenario(200))
    scenarios.append(_soak_scenario(32))
    # Real-compute DQN runs: fast/legacy twins quantify the compute fast
    # path end to end (synth's near-zero local compute can't show it).
    # 120 iterations so the steady-state loop dominates the one-time
    # construction + warmup cost both compute paths share.
    for n_workers in (4, 8):
        scenarios.append(
            _compute_training_scenario("dqn", "isw", n_workers, 120, "fast")
        )
        scenarios.append(
            _compute_training_scenario("dqn", "isw", n_workers, 120, "legacy")
        )
    scenarios.append(_micro_event_dispatch(100_000))
    scenarios.append(_micro_link_tx(20_000))
    scenarios.append(_micro_accel_agg(20))
    scenarios.append(_micro_env_step(200, 64))
    scenarios.append(_micro_env_step(200, 64, legacy=True))
    scenarios.append(_micro_replay_sample(20_000, 2_000, 32))
    scenarios.append(_micro_replay_sample(20_000, 2_000, 32, legacy=True))
    scenarios.append(_micro_optim_step(2_000))
    scenarios.append(_micro_optim_step(2_000, legacy=True))
    return scenarios


def run_benchmark(
    repeats: int = 5,
    smoke: bool = False,
    baseline_path: Optional[str] = None,
    progress: Callable[[str], None] = lambda msg: None,
) -> Dict[str, object]:
    """Run the matrix and return the full report dict."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    started = time.perf_counter()
    scenarios = bench_scenarios(smoke=smoke)
    results: Dict[str, Dict[str, object]] = {}
    for scenario in scenarios:
        progress(f"running {scenario.name} ...")
        record = scenario.run(repeats)
        counted = getattr(scenario.fn, "counted", None)
        if counted is not None:
            record.update(counted())
            median = record["median_s"]
            if median > 0:
                # Guarded per key: counted() variants (soak, future
                # scenarios) may report events without packet totals.
                if "events" in record:
                    record["events_per_s"] = round(record["events"] / median, 1)
                if "packets" in record:
                    record["packets_per_s"] = round(
                        record["packets"] / median, 1
                    )
        results[scenario.name] = record
        progress(
            f"  {scenario.name}: median {record['median_s']:.4f} s"
            + (
                f", {record['events_per_s']:.0f} events/s"
                if "events_per_s" in record
                else ""
            )
        )
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "host": host_info(),
        "config": {
            "repeats": repeats,
            "workload": BENCH_WORKLOAD,
            "seed": BENCH_SEED,
        },
        "scenarios": results,
        "total_wall_s": round(time.perf_counter() - started, 6),
    }
    compute_speedups = {}
    for name, record in results.items():
        legacy = results.get(f"{name}-legacy")
        if legacy and record.get("median_s"):
            compute_speedups[name] = round(
                legacy["median_s"] / record["median_s"], 3
            )
    if compute_speedups:
        report["compute_speedups"] = compute_speedups
    if baseline_path is not None:
        report.update(_embed_baseline(results, baseline_path))
    return report


def _embed_baseline(
    results: Dict[str, Dict[str, object]], baseline_path: str
) -> Dict[str, object]:
    """Fold a previous report in as ``baseline`` + per-scenario speedups."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        raise ValueError(
            f"baseline {baseline_path} has schema {baseline.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    speedups = {}
    for name, record in results.items():
        ref = baseline.get("scenarios", {}).get(name)
        if ref is None or not record.get("median_s"):
            continue
        speedups[name] = round(ref["median_s"] / record["median_s"], 3)
    return {
        "baseline": {
            "generated": baseline.get("generated"),
            "host": baseline.get("host"),
            "scenarios": baseline.get("scenarios", {}),
        },
        "speedups": speedups,
    }


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` if ``report`` violates the bench schema."""
    if report.get("schema") != SCHEMA:
        raise ValueError(f"bad schema marker: {report.get('schema')!r}")
    for key in ("generated", "host", "config", "scenarios", "total_wall_s"):
        if key not in report:
            raise ValueError(f"report missing {key!r}")
    for name, record in report["scenarios"].items():  # type: ignore[union-attr]
        for key in ("kind", "repeats", "wall_s", "median_s", "p90_s"):
            if key not in record:
                raise ValueError(f"scenario {name!r} missing {key!r}")
        if record["kind"] not in ("training", "chaos", "soak", "micro"):
            raise ValueError(f"scenario {name!r} has kind {record['kind']!r}")
        if record["kind"] in ("training", "chaos"):
            for key in ("sim_time_s", "events", "events_per_s",
                        "packets", "packets_per_s"):
                if key not in record:
                    raise ValueError(f"scenario {name!r} missing {key!r}")
        elif record["kind"] == "soak":
            for key in ("sim_time_s", "events", "events_per_s", "soak_ok"):
                if key not in record:
                    raise ValueError(f"scenario {name!r} missing {key!r}")


# ----------------------------------------------------------------------
# Baseline resolution and the regression gate
# ----------------------------------------------------------------------
def default_baseline() -> Optional[str]:
    """The newest checked-in report per ``benchmarks/results/MANIFEST.json``.

    The manifest lists results oldest-first; the last entry whose file
    exists wins.  Returns ``None`` when there is no usable manifest, so
    callers degrade to a baseline-free run.
    """
    manifest = os.path.join(RESULTS_DIR, "MANIFEST.json")
    try:
        with open(manifest) as fh:
            entries = json.load(fh).get("results", [])
    except (OSError, ValueError):
        return None
    if not isinstance(entries, list):
        return None
    for entry in reversed(entries):
        name = entry.get("file") if isinstance(entry, dict) else None
        if not name:
            continue
        path = os.path.join(RESULTS_DIR, name)
        if os.path.isfile(path):
            return path
    return None


def check_regression(
    report: Dict[str, object],
    max_regression: float,
    scenario: Optional[str] = None,
) -> int:
    """CI gate: 1 if a gated scenario regressed beyond the tolerance.

    With ``scenario=None`` every entry in ``GATE_SCENARIOS`` is checked
    and the worst exit code wins.

    Compares the report's *best* (min) sample against the baseline's
    best for the same scenario.  Min, not median: in the smoke run the
    gate scenario executes first and still cold, and the shared CI host
    drifts ~15% day to day, so medians across separate runs false-alarm
    long before they catch real regressions.  The best sample filters
    both warmup and scheduler noise; pair it with a generous tolerance
    (the Makefile uses 50%) so only structural slowdowns trip the gate.
    A missing baseline or scenario passes with a note — the gate only
    ever fails on a *measured* regression.
    """
    if scenario is None:
        return max(
            check_regression(report, max_regression, name)
            for name in GATE_SCENARIOS
        )
    baseline = report.get("baseline")
    if not isinstance(baseline, dict):
        print(f"regression gate: no baseline report; skipping {scenario}")
        return 0
    ref = baseline.get("scenarios", {}).get(scenario)
    current = report.get("scenarios", {}).get(scenario)  # type: ignore[union-attr]
    if not ref or not current or not ref.get("median_s"):
        print(f"regression gate: {scenario} not in both reports; skipping")
        return 0

    def best(entry):
        samples = entry.get("wall_s")
        if isinstance(samples, list) and samples:
            return min(samples)
        return entry["median_s"]

    ref_best = best(ref)
    cur_best = best(current)
    limit = ref_best * (1.0 + max_regression)
    if cur_best > limit:
        print(
            f"perf regression: {scenario} best {cur_best:.4f} s "
            f"> {ref_best:.4f} s * {1.0 + max_regression:.2f} "
            f"(tolerance {max_regression:.0%})",
            file=sys.stderr,
        )
        return 1
    print(
        f"regression gate: {scenario} best {cur_best:.4f} s "
        f"within {ref_best:.4f} s * {1.0 + max_regression:.2f}"
    )
    return 0


def _write_profile(profiler, path: str, top: int = 20) -> None:
    """Dump the top ``top`` cumulative-time entries of a cProfile run."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    with open(path, "w") as fh:
        fh.write(stream.getvalue())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_PR7.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timed repeats per scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny matrix for CI: one training scenario + shrunken micros",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default="auto",
        help="previous report to embed (adds baseline + speedups sections); "
        "'auto' (default) uses the newest entry in "
        "benchmarks/results/MANIFEST.json, 'none' disables",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) if the whole run exceeds this wall-time budget",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail (exit 1) if a gated scenario "
        f"({', '.join(GATE_SCENARIOS)}) best sample regressed "
        "more than FRAC (e.g. 0.50 = 50%%) versus the baseline report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile; write the top-20 cumulative entries "
        "to <out>.profile.txt",
    )


def run_bench(args: argparse.Namespace) -> int:
    baseline_path = args.baseline
    if baseline_path == "auto":
        baseline_path = default_baseline()
    elif baseline_path == "none":
        baseline_path = None
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        report = run_benchmark(
            repeats=args.repeats,
            smoke=args.smoke,
            baseline_path=baseline_path,
            progress=lambda msg: print(msg, flush=True),
        )
    finally:
        if profiler is not None:
            profiler.disable()
    validate_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"report written: {args.out} ({report['total_wall_s']:.1f} s total)")
    if profiler is not None:
        profile_path = args.out + ".profile.txt"
        _write_profile(profiler, profile_path)
        print(f"profile written: {profile_path}")
    speedups = report.get("speedups")
    if speedups:
        for name in sorted(speedups):
            print(f"  speedup {name}: {speedups[name]:.2f}x")
    code = 0
    if args.budget is not None and report["total_wall_s"] > args.budget:
        print(
            f"budget exceeded: {report['total_wall_s']:.1f} s > "
            f"{args.budget:.1f} s",
            file=sys.stderr,
        )
        code = 1
    if args.max_regression is not None:
        code = max(code, check_regression(report, args.max_regression))
    return code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="iSwitch reproduction wall-clock benchmark harness"
    )
    add_bench_arguments(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

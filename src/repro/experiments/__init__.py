"""The experiment harness: one module per table/figure in the paper.

Each module exposes ``collect()`` (returns structured records) and
``run()`` (prints the paper-style table and returns the records):

=========== =========================================================
Module      Paper artifact
=========== =========================================================
``table1``  Table 1 — workload study (model sizes, iteration counts)
``fig4``    Figure 4 — per-iteration breakdown of PS and AllReduce
``fig8``    Figure 8 — conventional vs on-the-fly aggregation
``table3``  Table 3 — end-to-end speedup summary
``table4``  Table 4 — synchronous training comparison
``table5``  Table 5 — asynchronous training comparison
``fig12``   Figure 12 — normalized sync per-iteration time
``fig13``   Figure 13 — DQN sync training curves
``fig14``   Figure 14 — DQN async training curves
``fig15``   Figure 15 — rack-scale scalability
=========== =========================================================

Beyond the paper: ``codec_ablation`` measures bytes-on-wire and
iteration time against convergence for each aggregation codec
(fp32/fp16/int32-bs/topk; DESIGN.md §12).
"""

from . import (
    codec_ablation,
    fig4,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
    table3,
    table4,
    table5,
    utilization,
)
from .reporting import format_bytes, format_seconds, render_series, render_table

__all__ = [
    "table1",
    "fig4",
    "fig8",
    "table3",
    "table4",
    "table5",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "utilization",
    "codec_ablation",
    "render_table",
    "render_series",
    "format_seconds",
    "format_bytes",
]

"""Figure 12: normalized per-iteration time of synchronous strategies,
with the component breakdown.

Every bar is normalized against the PS baseline of its workload; the
paper's headline deltas are printed alongside: iSW is 41.9 %–72.7 %
shorter per iteration than PS, with an 81.6 %–85.8 % reduction in
aggregation time, and 36.7 %–48.9 % shorter than AR.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from ..workloads.profiles import BREAKDOWN_COMPONENTS
from .reporting import render_table

__all__ = ["run", "collect"]

WORKLOADS = ("dqn", "a2c", "ppo", "ddpg")
STRATEGIES = ("ps", "ar", "isw")


def collect(
    n_iterations: int = 12, n_workers: int = 4, seed: int = 1
) -> List[Dict]:
    records = []
    for workload in WORKLOADS:
        per_strategy = {}
        for strategy in STRATEGIES:
            result = run_experiment(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode="sync",
                    n_workers=n_workers,
                    iterations=n_iterations,
                    seed=seed,
                    telemetry=False,
                )
            )
            per_strategy[strategy] = result
        baseline = per_strategy["ps"].per_iteration_time
        baseline_agg = per_strategy["ps"].breakdown.mean_per_iteration()[
            "grad_aggregation"
        ]
        for strategy in STRATEGIES:
            result = per_strategy[strategy]
            mean = result.breakdown.mean_per_iteration()
            records.append(
                {
                    "workload": workload,
                    "strategy": strategy,
                    "normalized_time": result.per_iteration_time / baseline,
                    "components": {
                        c: mean[c] / baseline for c in BREAKDOWN_COMPONENTS
                    },
                    "agg_reduction_vs_ps": 1.0
                    - mean["grad_aggregation"] / baseline_agg
                    if baseline_agg > 0
                    else 0.0,
                }
            )
    return records


def run(n_iterations: int = 12, verbose: bool = True) -> List[Dict]:
    records = collect(n_iterations=n_iterations)
    by = {(r["workload"], r["strategy"]): r for r in records}
    rows = []
    for workload in WORKLOADS:
        for strategy in STRATEGIES:
            record = by[(workload, strategy)]
            rows.append(
                (
                    workload.upper(),
                    strategy.upper(),
                    f"{record['normalized_time']:.3f}",
                    f"{record['components']['grad_aggregation']:.3f}",
                    f"{record['agg_reduction_vs_ps'] * 100:.1f}%"
                    if strategy == "isw"
                    else "-",
                )
            )
    table = render_table(
        (
            "workload",
            "approach",
            "norm. iter time",
            "norm. agg time",
            "agg reduction vs PS",
        ),
        rows,
        title="Figure 12: per-iteration time normalized to PS "
        "(paper: iSW cuts aggregation time by 81.6%-85.8%)",
    )
    if verbose:
        print(table)
    return records

"""Table 1: a study of popular RL algorithms (model size, iterations).

Reproduces the paper's workload characterization: the four RL algorithms,
their stand-in environments, gradient-vector wire sizes, and iteration
counts — plus the derived communication pressure (how many Ethernet
frames one iteration's gradient occupies), which is the quantity that
motivates the whole paper.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.protocol import SegmentPlan
from ..workloads.profiles import PROFILES
from .reporting import format_bytes, render_table

__all__ = ["run", "collect"]


def collect() -> List[Dict]:
    """One record per paper workload."""
    records = []
    for name in ("dqn", "a2c", "ppo", "ddpg"):
        profile = PROFILES[name]
        plan = SegmentPlan(profile.n_elements)
        records.append(
            {
                "algorithm": name.upper(),
                "environment": profile.environment,
                "model_bytes": profile.model_bytes,
                "iterations": profile.paper_iterations,
                "frames_per_vector": plan.n_frames,
                "messages": profile.message_count,
            }
        )
    return records


def run(verbose: bool = True) -> List[Dict]:
    records = collect()
    table = render_table(
        (
            "RL Algorithm",
            "Environment",
            "Model Size",
            "Training Iterations",
            "Frames/Vector",
        ),
        [
            (
                r["algorithm"],
                r["environment"],
                format_bytes(r["model_bytes"]),
                f"{r['iterations'] / 1e6:.2f}M",
                r["frames_per_vector"],
            )
            for r in records
        ],
        title="Table 1: A study of popular RL algorithms",
    )
    if verbose:
        print(table)
    return records

"""Figure 4: per-iteration time breakdown of PS and AllReduce training.

Runs the two baseline synchronous strategies on all four workloads and
prints the percentage of each iteration spent per component, reproducing
the paper's headline: gradient aggregation occupies 49.9 %–83.2 % of each
iteration.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from ..workloads.profiles import BREAKDOWN_COMPONENTS
from .reporting import render_table

__all__ = ["run", "collect"]

WORKLOADS = ("dqn", "a2c", "ppo", "ddpg")


def collect(
    n_iterations: int = 12, n_workers: int = 4, seed: int = 1
) -> List[Dict]:
    """Measure the Figure 4 breakdown for PS and AR on every workload."""
    records = []
    for strategy in ("ps", "ar"):
        for workload in WORKLOADS:
            result = run_experiment(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode="sync",
                    n_workers=n_workers,
                    iterations=n_iterations,
                    seed=seed,
                    telemetry=False,
                )
            )
            records.append(
                {
                    "strategy": strategy,
                    "workload": workload,
                    "percentages": result.breakdown.percentages(),
                    "aggregation_share": result.breakdown.aggregation_share,
                    "per_iteration_time": result.per_iteration_time,
                }
            )
    return records


def run(n_iterations: int = 12, verbose: bool = True) -> List[Dict]:
    records = collect(n_iterations=n_iterations)
    for strategy, label in (("ps", "PS"), ("ar", "AllReduce")):
        subset = [r for r in records if r["strategy"] == strategy]
        rows = []
        for component in BREAKDOWN_COMPONENTS:
            rows.append(
                [component]
                + [f"{r['percentages'][component]:.1f}" for r in subset]
            )
        table = render_table(
            ["component (%)"] + [r["workload"].upper() for r in subset],
            rows,
            title=f"Figure 4{'a' if strategy == 'ps' else 'b'}: "
            f"per-iteration breakdown, {label}",
        )
        if verbose:
            print(table)
            shares = [r["aggregation_share"] for r in subset]
            print(
                f"  gradient aggregation share: "
                f"{min(shares) * 100:.1f}%–{max(shares) * 100:.1f}% "
                "(paper: 49.9%–83.2% across PS and AR)\n"
            )
    return records

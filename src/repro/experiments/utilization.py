"""Extra analysis: per-link utilization under each synchronous strategy.

Not a numbered figure in the paper, but it quantifies the *mechanism*
behind Figures 12/15: the parameter server's single link saturates (the
central bottleneck the paper describes in §2.3), Ring-AllReduce spreads
load but multiplies volume, and iSwitch keeps every worker link lightly
and evenly loaded ("balanced communication by assigning a dedicated
network link to each worker node", §6.1).
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.runner import build_cluster
from ..distributed.sync import RingAllReduce, SyncISwitch, SyncParameterServer
from ..workloads.profiles import get_profile
from .reporting import render_table

__all__ = ["run", "collect"]

STRATEGY_CLASSES = {
    "ps": SyncParameterServer,
    "ar": RingAllReduce,
    "isw": SyncISwitch,
}


def collect(
    workload: str = "dqn",
    n_workers: int = 4,
    n_iterations: int = 10,
    seed: int = 1,
) -> List[Dict]:
    profile = get_profile(workload)
    records = []
    for strategy, cls in STRATEGY_CLASSES.items():
        net, workers = build_cluster(
            n_workers,
            profile,
            with_server=strategy == "ps",
            use_iswitch=strategy == "isw",
            seed=seed,
            workload=workload,
        )
        result = cls(net, workers, profile).run(n_iterations)
        elapsed = result.elapsed
        worker_up = [
            w.host.uplink.utilization(elapsed) for w in workers
        ]
        record = {
            "strategy": strategy,
            "elapsed": elapsed,
            "worker_uplink_mean": sum(worker_up) / len(worker_up),
            "worker_uplink_max": max(worker_up),
            "worker_uplink_min": min(worker_up),
        }
        if net.server is not None:
            # Both directions of the server's link.
            server_port = net.server.uplink
            record["server_tx"] = server_port.utilization(elapsed)
            record["server_rx"] = server_port.peer.utilization(elapsed)
        records.append(record)
    return records


def run(
    workload: str = "dqn", n_iterations: int = 10, verbose: bool = True
) -> List[Dict]:
    records = collect(workload=workload, n_iterations=n_iterations)
    rows = []
    for record in records:
        rows.append(
            (
                record["strategy"].upper(),
                f"{record['worker_uplink_mean'] * 100:.1f}%",
                f"{record['worker_uplink_max'] * 100:.1f}%",
                f"{record.get('server_rx', 0.0) * 100:.1f}%"
                if "server_rx" in record
                else "-",
                f"{record.get('server_tx', 0.0) * 100:.1f}%"
                if "server_tx" in record
                else "-",
            )
        )
    table = render_table(
        (
            "approach",
            "worker uplink (mean)",
            "worker uplink (max)",
            "server rx",
            "server tx",
        ),
        rows,
        title=f"Link utilization — {workload.upper()}, 4 workers "
        "(the PS central-link bottleneck, quantified)",
    )
    if verbose:
        print(table)
    return records

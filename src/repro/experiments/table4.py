"""Table 4: synchronous training — iterations, end-to-end time, rewards.

Follows the paper's own methodology (§5.3): per-iteration time is
*measured* (here: simulated) over a window of iterations, and end-to-end
training time is per-iteration time × the workload's convergence
iteration count.  All synchronous strategies apply mathematically
identical updates, so they share one "Number of Iterations" and reach the
same final reward — which the harness verifies by comparing the actual
NumPy weight trajectories across strategies.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from ..workloads.profiles import PROFILES
from .reporting import render_table

__all__ = ["run", "collect", "WORKLOADS", "STRATEGIES"]

WORKLOADS = ("dqn", "a2c", "ppo", "ddpg")
STRATEGIES = ("ps", "ar", "isw")


def collect(
    n_iterations: int = 12, n_workers: int = 4, seed: int = 1
) -> List[Dict]:
    """Measure per-iteration times for every (workload, strategy) pair."""
    records = []
    for workload in WORKLOADS:
        profile = PROFILES[workload]
        weights: Dict[str, np.ndarray] = {}
        for strategy in STRATEGIES:
            result = run_experiment(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode="sync",
                    n_workers=n_workers,
                    iterations=n_iterations,
                    seed=seed,
                    telemetry=False,
                )
            )
            weights[strategy] = result.workers[0].algorithm.get_weights()
            records.append(
                {
                    "workload": workload,
                    "strategy": strategy,
                    "iterations": profile.paper_iterations,
                    "per_iteration_ms": result.per_iteration_time * 1e3,
                    "paper_per_iteration_ms": profile.paper_sync_iter_ms[
                        strategy
                    ],
                    "hours": result.projected_hours(profile.paper_iterations),
                    "paper_hours": profile.paper_sync_hours[strategy],
                    "reward": result.final_average_reward,
                    "agg_share": result.breakdown.aggregation_share,
                }
            )
        # The paper's equivalence claim: all sync strategies perform the
        # same weight updates (their final rewards match to noise).
        trajectories_match = all(
            np.allclose(weights["ps"], weights[s], atol=1e-4)
            for s in ("ar", "isw")
        )
        for record in records[-len(STRATEGIES) :]:
            record["trajectories_match"] = trajectories_match
    return records


def run(n_iterations: int = 12, verbose: bool = True) -> List[Dict]:
    records = collect(n_iterations=n_iterations)
    rows = []
    for record in records:
        rows.append(
            (
                record["workload"].upper(),
                record["strategy"].upper(),
                f"{record['iterations']:.2e}",
                f"{record['per_iteration_ms']:.2f}",
                f"{record['paper_per_iteration_ms']:.2f}",
                f"{record['hours']:.2f}",
                f"{record['paper_hours']:.2f}",
                "yes" if record["trajectories_match"] else "NO",
            )
        )
    table = render_table(
        (
            "workload",
            "approach",
            "iterations",
            "iter ms (sim)",
            "iter ms (paper)",
            "end-to-end h (sim)",
            "paper h",
            "same weights",
        ),
        rows,
        title="Table 4: synchronous distributed training",
    )
    if verbose:
        print(table)
    return records

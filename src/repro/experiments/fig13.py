"""Figure 13: DQN synchronous training curves (reward vs wall clock).

Real DQN training on GridPong runs under each synchronous strategy; the
x-axis is the *simulated* wall clock, in which every gradient crosses the
network at the paper's 6.41 MB wire size.  All three strategies follow
the same reward-vs-iteration trajectory (identical updates); iSwitch's
shorter iterations translate the curve left — it reaches any reward level
first, AR second, PS last, reproducing the figure's shape.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from .reporting import render_series

__all__ = ["run", "collect"]

STRATEGIES = ("ps", "ar", "isw")


def collect(
    n_iterations: int = 1500,
    n_workers: int = 4,
    seed: int = 1,
    workload: str = "dqn",
) -> List[Dict]:
    records = []
    for strategy in STRATEGIES:
        result = run_experiment(
            ExperimentConfig(
                strategy=strategy,
                workload=workload,
                mode="sync",
                n_workers=n_workers,
                iterations=n_iterations,
                seed=seed,
                telemetry=False,
            )
        )
        curve = result.workers[0].reward_curve
        records.append(
            {
                "strategy": strategy,
                "times": curve.times,
                "rewards": curve.values,
                "elapsed": result.elapsed,
                "final_reward": result.final_average_reward,
                "per_iteration_ms": result.per_iteration_time * 1e3,
            }
        )
    return records


def time_to_reward(record: Dict, threshold: float) -> float:
    """First simulated time the 10-episode average reaches ``threshold``."""
    for t, r in zip(record["times"], record["rewards"]):
        if r >= threshold:
            return t
    return float("inf")


def run(n_iterations: int = 1500, verbose: bool = True) -> List[Dict]:
    records = collect(n_iterations=n_iterations)
    if verbose:
        for record in records:
            print(
                render_series(
                    f"Figure 13 [{record['strategy'].upper()}] DQN sync "
                    f"(iter {record['per_iteration_ms']:.1f} ms)",
                    record["times"],
                    record["rewards"],
                )
            )
            print()
        # Shape check: same reward level, ordered arrival times.
        final = min(r["final_reward"] for r in records)
        target = final - 0.5
        times = {r["strategy"]: time_to_reward(r, target) for r in records}
        print(
            f"time to reach reward {target:.2f}: "
            + ", ".join(f"{s}={t / 60.0:.1f} min" for s, t in times.items())
        )
    return records

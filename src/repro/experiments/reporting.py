"""Plain-text table/series rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_seconds", "format_bytes"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (paper-style)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    max_points: int = 20,
    time_unit: str = "min",
) -> str:
    """Render a (time, value) training curve as a downsampled table."""
    if len(times) != len(values):
        raise ValueError("times and values must have the same length")
    n = len(times)
    if n == 0:
        return f"{name}: (no data)"
    step = max(1, n // max_points)
    indices = list(range(0, n, step))
    if indices[-1] != n - 1:
        indices.append(n - 1)
    divisor = {"s": 1.0, "min": 60.0, "h": 3600.0}[time_unit]
    rows = [
        (f"{times[i] / divisor:.2f}", f"{values[i]:.2f}") for i in indices
    ]
    return render_table((f"time ({time_unit})", "avg reward"), rows, title=name)


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 3600.0:.2f} h"


def format_bytes(nbytes: int) -> str:
    if nbytes < 1024:
        return f"{nbytes} B"
    if nbytes < 1024 * 1024:
        return f"{nbytes / 1024:.2f} KB"
    return f"{nbytes / (1024 * 1024):.2f} MB"

"""Table 3: summary of end-to-end speedups over the PS baselines.

Derived from the Table 4 (synchronous) and Table 5 (asynchronous)
measurements: speedup = PS end-to-end time ÷ approach end-to-end time.
Paper reference: sync iSW 1.72–3.66×, async iSW 1.56–3.71×.
"""

from __future__ import annotations

from typing import Dict, List

from . import table4, table5
from .reporting import render_table

__all__ = ["run", "collect"]


def collect(
    sync_iterations: int = 12, async_updates: int = 80, seed: int = 1
) -> List[Dict]:
    sync_records = table4.collect(n_iterations=sync_iterations, seed=seed)
    async_records = table5.collect(n_updates=async_updates, seed=seed)
    records = []

    sync_by = {(r["workload"], r["strategy"]): r for r in sync_records}
    for workload in table4.WORKLOADS:
        baseline = sync_by[(workload, "ps")]["hours"]
        for strategy in table4.STRATEGIES:
            record = sync_by[(workload, strategy)]
            paper_base = sync_by[(workload, "ps")]["paper_hours"]
            records.append(
                {
                    "mode": "sync",
                    "workload": workload,
                    "strategy": strategy,
                    "speedup": baseline / record["hours"],
                    "paper_speedup": paper_base / record["paper_hours"],
                }
            )

    async_by = {(r["workload"], r["strategy"]): r for r in async_records}
    for workload in table5.WORKLOADS:
        baseline = async_by[(workload, "ps")]["hours"]
        for strategy in table5.STRATEGIES:
            record = async_by[(workload, strategy)]
            paper_base = async_by[(workload, "ps")]["paper_hours"]
            records.append(
                {
                    "mode": "async",
                    "workload": workload,
                    "strategy": strategy,
                    "speedup": baseline / record["hours"],
                    "paper_speedup": paper_base / record["paper_hours"],
                }
            )
    return records


def run(
    sync_iterations: int = 12,
    async_updates: int = 80,
    verbose: bool = True,
) -> List[Dict]:
    records = collect(sync_iterations, async_updates)
    for mode in ("sync", "async"):
        subset = [r for r in records if r["mode"] == mode]
        workloads = sorted({r["workload"] for r in subset}, key=str)
        strategies = [
            s
            for s in ("ps", "ar", "isw")
            if any(r["strategy"] == s for r in subset)
        ]
        by = {(r["workload"], r["strategy"]): r for r in subset}
        rows = []
        for strategy in strategies:
            cells = [strategy.upper()]
            for workload in ("dqn", "a2c", "ppo", "ddpg"):
                record = by[(workload, strategy)]
                cells.append(
                    f"{record['speedup']:.2f}x "
                    f"(paper {record['paper_speedup']:.2f}x)"
                )
            rows.append(cells)
        table = render_table(
            [f"{mode} speedup vs PS"] + [w.upper() for w in ("dqn", "a2c", "ppo", "ddpg")],
            rows,
            title=f"Table 3 ({mode}): end-to-end speedups over the PS baseline",
        )
        if verbose:
            print(table)
            print()
    return records

"""Figure 15: scalability of all approaches at 4 / 6 / 9 / 12 workers.

Clusters beyond four workers use the rack-scale topology of Figure 10
(three workers per ToR, as in the paper's NetFPGA-port-limited
emulation), with hierarchical in-switch aggregation for iSwitch.

The speedup of a cluster size N, normalized to the 4-node case of the
same approach, is

    speedup(N) = [T_iter(4) × I(4)] / [T_iter(N) × I(N)]

where T_iter is the simulated per-iteration (or per-update) time and the
convergence iteration count scales as I(N) ∝ 1/N (perfect data
parallelism — the paper's ideal line is exactly N/4).  For asynchronous
runs, I(N) additionally carries a staleness-inflation factor
(1 + α·√s̄(N)): across cluster sizes the mean staleness of Async PS grows
roughly ∝ N, and the sublinear square-root form (consistent with
stale-synchronous-parallel convergence bounds, the paper's [15, 21])
extrapolates across that range where Table 5's locally-calibrated linear
model would not.  The effect matches Figures 15b/15d: Async PS's growing
staleness flattens its curve to well-below-linear, while Async iSwitch's
staleness stays ≈1 regardless of N, keeping it near the ideal line.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from .reporting import render_table

__all__ = ["run", "collect", "CLUSTER_SIZES"]

CLUSTER_SIZES = (4, 6, 9, 12)
SYNC_STRATEGIES = ("ps", "ar", "isw")
ASYNC_STRATEGIES = ("ps", "isw")
#: Staleness-inflation slope used for the async convergence model; the
#: Table 5 harness calibrates it per workload, here a representative
#: mid-range value keeps the figure self-contained.
ALPHA = 1.2


def collect(
    workloads=("ppo", "ddpg"),
    sizes=CLUSTER_SIZES,
    n_iterations: int = 10,
    n_updates: int = 60,
    seed: int = 1,
) -> List[Dict]:
    records = []
    for workload in workloads:
        for strategy in SYNC_STRATEGIES:
            base = None
            for size in sizes:
                result = run_experiment(
                    ExperimentConfig(
                        strategy=strategy,
                        workload=workload,
                        mode="sync",
                        n_workers=size,
                        iterations=n_iterations,
                        seed=seed,
                        telemetry=False,
                    )
                )
                cost = result.per_iteration_time / size  # T × I, I ∝ 1/N
                if base is None:
                    base = cost
                records.append(
                    {
                        "mode": "sync",
                        "workload": workload,
                        "strategy": strategy,
                        "n_workers": size,
                        "per_iteration_ms": result.per_iteration_time * 1e3,
                        "speedup": base / cost,
                    }
                )
        for strategy in ASYNC_STRATEGIES:
            base = None
            for size in sizes:
                result = run_experiment(
                    ExperimentConfig(
                        strategy=strategy,
                        workload=workload,
                        mode="async",
                        n_workers=size,
                        iterations=n_updates,
                        seed=seed,
                        telemetry=False,
                    )
                )
                staleness = result.mean_staleness
                inflation = 1.0 + ALPHA * staleness**0.5
                cost = result.per_iteration_time * inflation / size
                if base is None:
                    base = cost
                records.append(
                    {
                        "mode": "async",
                        "workload": workload,
                        "strategy": strategy,
                        "n_workers": size,
                        "per_iteration_ms": result.per_iteration_time * 1e3,
                        "mean_staleness": staleness,
                        "speedup": base / cost,
                    }
                )
    return records


def run(
    n_iterations: int = 10, n_updates: int = 60, verbose: bool = True
) -> List[Dict]:
    records = collect(n_iterations=n_iterations, n_updates=n_updates)
    panels = (
        ("ppo", "sync", "15a: PPO-Sync"),
        ("ppo", "async", "15b: PPO-Async"),
        ("ddpg", "sync", "15c: DDPG-Sync"),
        ("ddpg", "async", "15d: DDPG-Async"),
    )
    for workload, mode, label in panels:
        subset = [
            r
            for r in records
            if r["workload"] == workload and r["mode"] == mode
        ]
        strategies = SYNC_STRATEGIES if mode == "sync" else ASYNC_STRATEGIES
        rows = []
        for strategy in strategies:
            cells = [strategy.upper()]
            for size in CLUSTER_SIZES:
                match = [
                    r
                    for r in subset
                    if r["strategy"] == strategy and r["n_workers"] == size
                ]
                cells.append(f"{match[0]['speedup']:.2f}x" if match else "-")
            rows.append(cells)
        rows.append(
            ["Ideal"] + [f"{size / CLUSTER_SIZES[0]:.2f}x" for size in CLUSTER_SIZES]
        )
        table = render_table(
            ["approach"] + [f"{n} workers" for n in CLUSTER_SIZES],
            rows,
            title=f"Figure {label}: end-to-end speedup vs 4-worker case",
        )
        if verbose:
            print(table)
            print()
    return records

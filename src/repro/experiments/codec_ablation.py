"""Codec ablation: wire bytes and iteration time vs convergence per codec.

Runs the same sync-isw training at every aggregation numerics setting
(fp32 / fp16 / int32-bs / topk, see :mod:`repro.core.compression`) and
reports, per workload:

* **bytes on wire** (``link.tx_bytes`` over the whole run) and the
  reduction factor against fp32 — the claim under test is that the
  2-byte-element codecs (fp16, int32-bs) at least halve the traffic;
* **simulated per-iteration time**, which shrinks with the wire bytes by
  whatever share of the iteration communication occupies;
* **final average reward** and its delta against the fp32 run with the
  same seed — the convergence cost of the precision loss (tolerances in
  DESIGN.md §12).

The scenario matrix (workloads, codecs, worker count, window) is read
from ``examples/codec_ablation.json`` when present, so ``repro exp
codec_ablation`` is reconfigurable without code changes; the inline
defaults match that file.  Passing ``out=`` writes the records plus a
per-codec summary as a JSON artifact (the checked-in copy lives at
``benchmarks/results/CODEC_ABLATION.json``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from .reporting import render_table

__all__ = ["run", "collect", "WORKLOADS", "CODECS_ORDER", "load_scenarios"]

WORKLOADS = ("dqn", "ppo")
CODECS_ORDER = ("fp32", "fp16", "int32-bs", "topk")

#: Default scenario-matrix config, mirrored by examples/codec_ablation.json.
_DEFAULTS = {
    "workloads": list(WORKLOADS),
    "codecs": list(CODECS_ORDER),
    "n_workers": 4,
    "iterations": 8,
    "seed": 1,
}

_EXAMPLE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "examples",
    "codec_ablation.json",
)


def load_scenarios(path: Optional[str] = None) -> Dict:
    """The scenario matrix: ``examples/codec_ablation.json`` or defaults."""
    candidate = path or _EXAMPLE_PATH
    config = dict(_DEFAULTS)
    if os.path.exists(candidate):
        with open(candidate, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        config.update({k: loaded[k] for k in _DEFAULTS if k in loaded})
    return config


def collect(
    n_iterations: Optional[int] = None,
    n_workers: Optional[int] = None,
    seed: Optional[int] = None,
    scenarios: Optional[Dict] = None,
) -> List[Dict]:
    """Run the matrix; explicit arguments override the scenario file."""
    config = scenarios or load_scenarios()
    iterations = n_iterations if n_iterations is not None else config["iterations"]
    workers = n_workers if n_workers is not None else config["n_workers"]
    run_seed = seed if seed is not None else config["seed"]
    records: List[Dict] = []
    for workload in config["workloads"]:
        baseline: Optional[Dict] = None
        for codec in config["codecs"]:
            result = run_experiment(
                ExperimentConfig(
                    strategy="isw",
                    workload=workload,
                    mode="sync",
                    n_workers=workers,
                    iterations=iterations,
                    seed=run_seed,
                    codec=codec,
                    telemetry=True,
                )
            )
            record = {
                "workload": workload,
                "codec": codec,
                "n_workers": workers,
                "iterations": iterations,
                "seed": run_seed,
                "wire_bytes": int(result.telemetry.value("link.tx_bytes")),
                "per_iteration_ms": result.per_iteration_time * 1e3,
                "reward": result.final_average_reward,
            }
            # The reduction factor and reward delta are measured against
            # the fp32 run of the same (workload, seed, window); the
            # baseline row is definitionally 1x/1x/0 (short windows can
            # leave the reward NaN, and NaN - NaN is NaN).
            if codec == "fp32":
                baseline = record
                record["bytes_reduction"] = 1.0
                record["iter_speedup"] = 1.0
                record["reward_delta"] = 0.0
            else:
                record["bytes_reduction"] = (
                    baseline["wire_bytes"] / record["wire_bytes"]
                    if baseline and record["wire_bytes"]
                    else 1.0
                )
                record["iter_speedup"] = (
                    baseline["per_iteration_ms"] / record["per_iteration_ms"]
                    if baseline and record["per_iteration_ms"]
                    else 1.0
                )
                record["reward_delta"] = (
                    record["reward"] - baseline["reward"] if baseline else 0.0
                )
            records.append(record)
    return records


def run(
    n_iterations: Optional[int] = None,
    verbose: bool = True,
    out: Optional[str] = None,
) -> List[Dict]:
    records = collect(n_iterations=n_iterations)
    rows = [
        (
            record["workload"].upper(),
            record["codec"],
            f"{record['wire_bytes']:,}",
            f"{record['bytes_reduction']:.2f}x",
            f"{record['per_iteration_ms']:.3f}",
            f"{record['iter_speedup']:.2f}x",
            f"{record['reward']:.4f}",
            f"{record['reward_delta']:+.4f}",
        )
        for record in records
    ]
    table = render_table(
        (
            "workload",
            "codec",
            "wire bytes",
            "vs fp32",
            "iter ms",
            "speedup",
            "reward",
            "d-reward",
        ),
        rows,
        title="Codec ablation: bytes on wire vs convergence (sync-isw)",
    )
    if verbose:
        print(table)
    if out:
        artifact = {
            "experiment": "codec_ablation",
            "scenarios": load_scenarios(),
            "records": records,
        }
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if verbose:
            print(f"artifact written: {out}")
    return records

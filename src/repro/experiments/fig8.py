"""Figure 8: conventional vs on-the-fly aggregation.

Measures the pure aggregation latency (all workers start streaming at
t=0; stop the clock when every worker holds the summed vector) on the
same 4-worker iSwitch topology under two accelerator configurations:

* **on-the-fly** (Figure 8b, the real iSwitch): each segment is summed as
  it arrives and broadcast the moment its counter reaches H — summation
  and transmission overlap, so total latency approaches one uplink
  serialization plus one downlink serialization of the vector.
* **conventional** (Figure 8a): the :class:`VectorGranularityEngine`
  holds results until entire gradient vectors have arrived before
  producing output, like a parameter server's "wait for the arrival of
  the entire gradient vectors before the summation operations".

The gap between the two is exactly the synchronization overhead the paper
attributes to vector-granularity aggregation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.accelerator import VectorGranularityEngine
from ..core.client import AggregationClient
from ..core.hierarchy import configure_aggregation, iswitch_factory
from ..core.protocol import SegmentPlan
from ..netsim.events import Simulator
from ..netsim.topology import build_star
from ..workloads.profiles import PROFILES
from .reporting import format_bytes, format_seconds, render_table

__all__ = ["run", "collect", "measure_aggregation_latency"]


def measure_aggregation_latency(
    model_bytes: int,
    n_workers: int = 4,
    on_the_fly: bool = True,
    max_chunks: int = 256,
    seed: int = 0,
) -> float:
    """Simulated latency of one full gradient aggregation (seconds)."""
    sim = Simulator()
    net = build_star(sim, n_workers, switch_factory=iswitch_factory)
    configure_aggregation(net)
    switch = net.switches[0]

    n_elements = max(n_workers, model_bytes // 4)
    base = SegmentPlan(n_elements)
    frames_per_chunk = max(1, -(-base.n_frames // max_chunks))
    plan = SegmentPlan(n_elements, frames_per_chunk=frames_per_chunk)

    if not on_the_fly:
        engine = VectorGranularityEngine(
            n_chunks=plan.n_chunks, threshold=n_workers
        )
        switch.engine = engine

    finish_times: Dict[str, float] = {}
    clients: List[AggregationClient] = []
    for worker in net.workers:
        name = worker.name
        clients.append(
            AggregationClient(
                worker,
                switch.name,
                plan,
                on_round_complete=lambda rnd, vec, n=name: finish_times.__setitem__(
                    n, sim.now
                ),
            )
        )

    rng = np.random.default_rng(seed)
    for client in clients:
        client.send_gradient(
            rng.standard_normal(n_elements).astype(np.float32), round_index=0
        )
    sim.run()
    if len(finish_times) != n_workers:
        raise RuntimeError(
            f"aggregation incomplete: {len(finish_times)}/{n_workers} workers"
        )
    return max(finish_times.values())


def collect(n_workers: int = 4) -> List[Dict]:
    records = []
    for name in ("dqn", "a2c", "ppo", "ddpg"):
        model_bytes = PROFILES[name].model_bytes
        conventional = measure_aggregation_latency(
            model_bytes, n_workers, on_the_fly=False
        )
        on_the_fly = measure_aggregation_latency(
            model_bytes, n_workers, on_the_fly=True
        )
        records.append(
            {
                "workload": name,
                "model_bytes": model_bytes,
                "conventional": conventional,
                "on_the_fly": on_the_fly,
                "speedup": conventional / on_the_fly,
            }
        )
    return records


def run(verbose: bool = True) -> List[Dict]:
    records = collect()
    table = render_table(
        ("workload", "vector size", "conventional", "on-the-fly", "speedup"),
        [
            (
                r["workload"].upper(),
                format_bytes(r["model_bytes"]),
                format_seconds(r["conventional"]),
                format_seconds(r["on_the_fly"]),
                f"{r['speedup']:.2f}x",
            )
            for r in records
        ],
        title="Figure 8: conventional (8a) vs on-the-fly (8b) aggregation "
        "latency, 4 workers, 10 GbE",
    )
    if verbose:
        print(table)
    return records

"""Figure 14: DQN asynchronous training curves (reward vs wall clock).

Real asynchronous DQN training under the PS baseline and under iSwitch's
Algorithm 1.  Two separate effects shape the figure, both emergent here:

* Async iSwitch's updates arrive faster (shorter interval between weight
  updates for DQN) — the x-axis compresses.
* Async iSwitch's gradients are fresher (measured staleness ≈ 1 vs ≈ 3
  for PS), so the reward-per-update trajectory is steeper.

Together the iSwitch curve reaches any reward level well before the PS
curve, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from .reporting import render_series

__all__ = ["run", "collect"]

STRATEGIES = ("ps", "isw")


def collect(
    n_updates: int = 1200,
    n_workers: int = 4,
    seed: int = 1,
    workload: str = "dqn",
    staleness_bound: int = 3,
) -> List[Dict]:
    records = []
    for strategy in STRATEGIES:
        result = run_experiment(
            ExperimentConfig(
                strategy=strategy,
                workload=workload,
                mode="async",
                n_workers=n_workers,
                iterations=n_updates,
                seed=seed,
                staleness_bound=staleness_bound,
                telemetry=False,
            )
        )
        curve = result.workers[0].reward_curve
        records.append(
            {
                "strategy": strategy,
                "times": curve.times,
                "rewards": curve.values,
                "elapsed": result.elapsed,
                "final_reward": result.final_average_reward,
                "per_iteration_ms": result.per_iteration_time * 1e3,
                "mean_staleness": result.mean_staleness,
            }
        )
    return records


def run(n_updates: int = 1200, verbose: bool = True) -> List[Dict]:
    records = collect(n_updates=n_updates)
    if verbose:
        for record in records:
            print(
                render_series(
                    f"Figure 14 [Async {record['strategy'].upper()}] DQN "
                    f"(update interval {record['per_iteration_ms']:.1f} ms, "
                    f"staleness {record['mean_staleness']:.2f})",
                    record["times"],
                    record["rewards"],
                )
            )
            print()
    return records

"""Table 5: asynchronous training — iterations, per-iteration time,
end-to-end time, rewards.

Per-iteration time is the measured interval between consecutive weight
updates (at the PS for Async PS, at a worker's LWU thread for Async
iSwitch), exactly the paper's definition (§5.2).

The "Number of Iterations" column needs a convergence model: asynchronous
training converges slower the staler its gradients are (paper §6.2, citing
[15, 25]).  We use the standard linear staleness-inflation model

    iterations(s̄) = sync_iterations × (1 + α · s̄)

with α calibrated **once per workload from the paper's Async-PS column**
(α = (paper async-PS iterations / sync iterations − 1) / s̄_PS,measured).
The Async-iSwitch iteration count is then *predicted* from its own
measured staleness — so the headline claim (iSwitch's fresher gradients
need fewer iterations) is an emergent result of the simulated timing, not
an input.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.config import ExperimentConfig
from ..distributed.runner import run as run_experiment
from ..workloads.profiles import PROFILES
from .reporting import render_table

__all__ = ["run", "collect", "WORKLOADS", "STRATEGIES"]

WORKLOADS = ("dqn", "a2c", "ppo", "ddpg")
STRATEGIES = ("ps", "isw")


def collect(
    n_updates: int = 80,
    n_workers: int = 4,
    seed: int = 1,
    staleness_bound: int = 3,
) -> List[Dict]:
    records = []
    for workload in WORKLOADS:
        profile = PROFILES[workload]
        measured: Dict[str, Dict] = {}
        for strategy in STRATEGIES:
            result = run_experiment(
                ExperimentConfig(
                    strategy=strategy,
                    workload=workload,
                    mode="async",
                    n_workers=n_workers,
                    iterations=n_updates,
                    seed=seed,
                    staleness_bound=staleness_bound,
                    telemetry=False,
                )
            )
            measured[strategy] = {
                "per_iteration": result.per_iteration_time,
                "staleness": result.mean_staleness,
                "reward": result.final_average_reward,
            }
        # Calibrate the staleness-inflation slope on the PS column; the
        # iSwitch iteration count is then a prediction.
        s_ps = max(measured["ps"]["staleness"], 1e-6)
        paper_ps_iters = profile.paper_async_iterations["ps"]
        alpha = (paper_ps_iters / profile.paper_iterations - 1.0) / s_ps
        for strategy in STRATEGIES:
            staleness = measured[strategy]["staleness"]
            derived_iters = profile.paper_iterations * (1.0 + alpha * staleness)
            paper_iters = profile.paper_async_iterations[strategy]
            per_iteration = measured[strategy]["per_iteration"]
            records.append(
                {
                    "workload": workload,
                    "strategy": strategy,
                    "mean_staleness": staleness,
                    "derived_iterations": derived_iters,
                    "paper_iterations": paper_iters,
                    "per_iteration_ms": per_iteration * 1e3,
                    "paper_per_iteration_ms": profile.paper_async_iter_ms[
                        strategy
                    ],
                    # End-to-end hours combine the *simulated* update
                    # interval with the paper's convergence iteration
                    # count (the paper's own decomposition); the
                    # staleness-derived count is kept as a validation of
                    # the direction and magnitude of the convergence gap.
                    "hours": per_iteration * paper_iters / 3600.0,
                    "hours_model": per_iteration * derived_iters / 3600.0,
                    "paper_hours": profile.paper_async_hours[strategy],
                    "reward": measured[strategy]["reward"],
                }
            )
    return records


def run(n_updates: int = 80, verbose: bool = True) -> List[Dict]:
    records = collect(n_updates=n_updates)
    rows = []
    for record in records:
        rows.append(
            (
                record["workload"].upper(),
                "Async " + record["strategy"].upper(),
                f"{record['mean_staleness']:.2f}",
                f"{record['derived_iterations']:.2e}",
                f"{record['paper_iterations']:.2e}",
                f"{record['per_iteration_ms']:.2f}",
                f"{record['paper_per_iteration_ms']:.2f}",
                f"{record['hours']:.2f}",
                f"{record['paper_hours']:.2f}",
            )
        )
    table = render_table(
        (
            "workload",
            "approach",
            "staleness",
            "iterations (model)",
            "paper iters",
            "iter ms (sim)",
            "iter ms (paper)",
            "end-to-end h",
            "paper h",
        ),
        rows,
        title="Table 5: asynchronous distributed training (S = 3)",
    )
    if verbose:
        print(table)
    return records

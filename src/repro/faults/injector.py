"""The fault injector: applies a FaultPlan to a live experiment.

A :class:`FaultInjector` is built by the distributed runner after the
network, workers and strategy exist but before the simulation starts.
:meth:`install` schedules one simulator event per plan entry;
:meth:`finalize` (called after ``sim.run()`` returns) settles every
record and returns the :class:`~repro.faults.report.FaultReport`.

Strategy coupling is deliberately thin and duck-typed: the injector
looks for optional hooks on the strategy object —

* ``fault_crash_worker(worker) -> bool`` / ``fault_restore_worker(worker)
  -> bool`` for worker crash + rejoin,
* ``fault_reset_switch(switch) -> bool`` for a mid-run accelerator Reset

— and falls back to a *skipped* record when a hook is missing or
declines (returns ``False``).  Link-level faults (burst loss, bandwidth
degradation) and stragglers need no strategy hook: they mutate the
:class:`~repro.netsim.link.Link` / ``ComputeModel`` state directly, for
a timed window.

Recovery detection is observational, not declared: after a crash's
restore (or a switch reset) the injector polls cheap monotonic progress
counters — ``worker.iterations_done``, ``engine.stats.completions`` —
at a small simulated-time interval, bounded by ``max_polls`` so an
unrecoverable run ends in a *failed* record instead of a livelock.
Telemetry: each record emits ``fault.injected`` / ``fault.recovered``
events and counters, plus a ``fault.recovery`` span covering
injection -> detected recovery.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.link import GilbertElliott, Link
from .plan import FaultPlan
from .report import FaultRecord, FaultReport

__all__ = ["FaultInjector"]

#: Default polling period (simulated seconds) for recovery detection.
DEFAULT_POLL_INTERVAL = 2e-3
#: Default cap on recovery polls per record.
DEFAULT_MAX_POLLS = 400


class FaultInjector:
    """Schedules a plan's events against one experiment."""

    def __init__(
        self,
        net,
        workers: List,
        strategy,
        plan: FaultPlan,
        loss_tolerant: bool = False,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_polls: int = DEFAULT_MAX_POLLS,
    ) -> None:
        plan.validate()
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.strategy = strategy
        self.plan = plan
        #: Whether the running strategy survives packet loss (iSwitch
        #: data path + Help/retransmit).  Gates link-burst injection.
        self.loss_tolerant = loss_tolerant
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        self.poll_interval = poll_interval
        self.max_polls = max_polls
        self.report = FaultReport(
            records=[FaultRecord(event=e) for e in plan.events]
        )
        self._installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every plan event; call once, before the run starts."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        for record in self.report.records:
            self.sim.schedule_at(
                record.event.time,
                lambda r=record: self._fire(r),
                name=f"fault:{record.event.kind}",
            )
            self._register_train_barriers(record)

    def _register_train_barriers(self, record: FaultRecord) -> None:
        """Pre-register fault-window edges as train-split boundaries.

        Batched transport coalesces a burst into one delivery event, so a
        link-property change mid-train would otherwise apply to none of
        it.  Barriers make ``send_train`` split exactly at the window
        start/end; splitting is semantically neutral on its own (same
        loss draws, same busy-time recurrence), so registering them even
        for records that later skip costs nothing but an extra event.
        """
        event = record.event
        if event.kind not in ("link-burst", "link-degrade"):
            return
        duration = event.params.get("duration")
        for link in self._resolve_links(event.target):
            link.add_train_barrier(event.time)
            if duration is not None:
                link.add_train_barrier(event.time + duration)

    def finalize(self, result=None) -> FaultReport:
        """Settle still-open records after the run; attach to ``result``."""
        for record in self.report.records:
            if record.status == "pending":
                record.status = "skipped"
                record.detail = "run ended before the event time"
            elif record.status == "injected":
                record.status = "failed"
                record.detail = (
                    record.detail or "recovery not observed before run end"
                )
        if result is not None:
            result.fault_report = self.report
        return self.report

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _fire(self, record: FaultRecord) -> None:
        handler = {
            "worker-crash": self._fire_worker_crash,
            "switch-reset": self._fire_switch_reset,
            "link-burst": self._fire_link_burst,
            "link-degrade": self._fire_link_degrade,
            "straggler": self._fire_straggler,
        }[record.event.kind]
        handler(record)

    def _mark_injected(self, record: FaultRecord) -> None:
        record.status = "injected"
        record.injected_at = self.sim.now
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("fault.injected_total", 1, kind=record.event.kind)
            telemetry.event(
                "fault.injected",
                cat="fault",
                track="faults",
                kind=record.event.kind,
                target=record.event.target,
            )

    def _mark_skipped(self, record: FaultRecord, detail: str) -> None:
        record.status = "skipped"
        record.detail = detail
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("fault.skipped_total", 1, kind=record.event.kind)

    def _mark_recovered(self, record: FaultRecord, detail: str = "") -> None:
        record.status = "recovered"
        record.recovered_at = self.sim.now
        if detail:
            record.detail = detail
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("fault.recovered_total", 1, kind=record.event.kind)
            telemetry.event(
                "fault.recovered",
                cat="fault",
                track="faults",
                kind=record.event.kind,
                target=record.event.target,
            )
            if record.injected_at is not None:
                telemetry.span_at(
                    "fault.recovery",
                    record.injected_at,
                    self.sim.now,
                    cat="fault",
                    track="faults",
                    kind=record.event.kind,
                    target=record.event.target,
                )

    def _poll_until(self, record: FaultRecord, predicate, detail: str) -> None:
        """Poll ``predicate`` until true (-> recovered) or budget exhausted."""
        polls = {"n": 0}

        def check() -> None:
            if record.status != "injected":
                return
            if predicate():
                self._mark_recovered(record, detail)
                return
            polls["n"] += 1
            if polls["n"] >= self.max_polls:
                record.status = "failed"
                record.detail = (
                    f"no recovery within {self.max_polls} polls of "
                    f"{self.poll_interval * 1e3:.2f} ms"
                )
                return
            self.sim.schedule(self.poll_interval, check, name="fault:poll")

        self.sim.schedule(self.poll_interval, check, name="fault:poll")

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _resolve_worker(self, target: str):
        for worker in self.workers:
            if worker.host.name == target or f"worker{worker.index}" == target:
                return worker
        return None

    def _resolve_switch(self, target: str):
        if target == "root":
            return self.net.root
        for switch in self.net.switches:
            if switch.name == target:
                return switch
        return None

    def _resolve_links(self, target: str) -> List[Link]:
        if target == "*":
            return list(self.net.links)
        matched = []
        for link in self.net.links:
            endpoints = [
                end.device.name for end in link.ends if end.device is not None
            ]
            if link.name == target or target in endpoints:
                matched.append(link)
        return matched

    # ------------------------------------------------------------------
    # Kind handlers
    # ------------------------------------------------------------------
    def _fire_worker_crash(self, record: FaultRecord) -> None:
        worker = self._resolve_worker(record.event.target)
        if worker is None:
            self._mark_skipped(
                record, f"no worker matches {record.event.target!r}"
            )
            return
        crash = getattr(self.strategy, "fault_crash_worker", None)
        restore = getattr(self.strategy, "fault_restore_worker", None)
        if crash is None or restore is None:
            self._mark_skipped(
                record, "strategy has no worker crash/restore hooks"
            )
            return
        if not crash(worker):
            self._mark_skipped(
                record, "strategy declined the crash (e.g. last live worker)"
            )
            return
        self._mark_injected(record)
        down_for = record.event.params["down_for"]

        def rejoin() -> None:
            restore(worker)
            iterations_at_restore = worker.iterations_done
            self._poll_until(
                record,
                lambda: worker.iterations_done > iterations_at_restore,
                detail="worker rejoined and iterated",
            )

        self.sim.schedule(down_for, rejoin, name="fault:rejoin")

    def _fire_switch_reset(self, record: FaultRecord) -> None:
        switch = self._resolve_switch(record.event.target)
        if switch is None:
            self._mark_skipped(
                record, f"no switch matches {record.event.target!r}"
            )
            return
        engine = getattr(switch, "engine", None)
        if engine is None:
            self._mark_skipped(
                record, "target switch has no aggregation engine"
            )
            return
        reset = getattr(self.strategy, "fault_reset_switch", None)
        if reset is None:
            self._mark_skipped(
                record, "strategy has no in-switch aggregation to reset"
            )
            return
        completions_before = engine.stats.completions
        if not reset(switch):
            self._mark_skipped(record, "strategy declined the reset")
            return
        self._mark_injected(record)
        self._poll_until(
            record,
            lambda: engine.stats.completions > completions_before,
            detail="aggregation completions resumed after reset",
        )

    def _fire_link_burst(self, record: FaultRecord) -> None:
        if not self.loss_tolerant:
            self._mark_skipped(
                record, "strategy has no loss recovery; burst loss not injected"
            )
            return
        links = self._resolve_links(record.event.target)
        if not links:
            self._mark_skipped(
                record, f"no link matches {record.event.target!r}"
            )
            return
        params = record.event.params
        model_args = dict(
            loss=params.get("loss", 0.02),
            loss_bad=params.get("loss_bad", 0.5),
            p_bad_to_good=params.get("p_bad_to_good", 0.25),
        )
        for link in links:
            link.loss_model = GilbertElliott.from_mean_loss(**model_args)
        self._mark_injected(record)

        def restore() -> None:
            for link in links:
                link.loss_model = None
            self._mark_recovered(record, detail="loss window ended")

        self.sim.schedule(params["duration"], restore, name="fault:burst-end")

    def _fire_link_degrade(self, record: FaultRecord) -> None:
        links = self._resolve_links(record.event.target)
        if not links:
            self._mark_skipped(
                record, f"no link matches {record.event.target!r}"
            )
            return
        params = record.event.params
        factor = params["factor"]
        originals = [(link, link.bandwidth) for link in links]
        for link in links:
            link.bandwidth = link.bandwidth / factor
        self._mark_injected(record)

        def restore() -> None:
            for link, bandwidth in originals:
                link.bandwidth = bandwidth
            self._mark_recovered(record, detail="bandwidth restored")

        self.sim.schedule(
            params["duration"], restore, name="fault:degrade-end"
        )

    def _fire_straggler(self, record: FaultRecord) -> None:
        worker = self._resolve_worker(record.event.target)
        if worker is None:
            self._mark_skipped(
                record, f"no worker matches {record.event.target!r}"
            )
            return
        params = record.event.params
        worker.compute.slowdown = params["slowdown"]
        self._mark_injected(record)

        def restore() -> None:
            worker.compute.slowdown = 1.0
            self._mark_recovered(record, detail="compute speed restored")

        self.sim.schedule(
            params["duration"], restore, name="fault:straggler-end"
        )

"""Replica resynchronization: clone training state into a rejoining worker.

When a crashed worker rejoins, handing it only the current weight vector
is not enough — modern optimizers carry per-parameter state (Adam
moments, momentum velocities, step counters) and some algorithms carry
derived networks (DQN's target net).  A rejoined replica that restarts
that state from zero would take visibly different optimizer steps from
its peers and break the decentralized-weights agreement the paper's
async design relies on.

:func:`clone_training_state` deep-copies everything that influences
future updates from a healthy source replica:

* the flat weight vector (``set_weights``),
* ``updates_applied`` (drives ε schedules and target-sync cadence),
* every :class:`~repro.nn.layers.Module` attribute's parameter arrays
  (covers target networks, which ``set_weights`` does not touch),
* every :class:`~repro.nn.optim.Optimizer` attribute's state, remapping
  the ``id(param)``-keyed dicts from source params onto the
  destination's params *by position* (both replicas were built from the
  same constructor, so their parameter lists align).

What it cannot clone: environment/replay state and RNG streams, which
are intentionally per-worker.  A rejoined worker therefore produces
different *gradients* than it would have — but applies the same
*updates* — which keeps all replicas' weights in lockstep.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn.layers import Module
from ..nn.optim import Optimizer

__all__ = ["clone_training_state", "clone_optimizer_state"]


def _clone_value(value):
    if isinstance(value, np.ndarray):
        return np.array(value, copy=True)
    return value


def clone_optimizer_state(
    src: Optimizer, dst: Optimizer, id_map: Dict[int, int]
) -> None:
    """Copy ``src``'s state into ``dst``, remapping id-keyed dicts.

    ``id_map`` maps ``id(src_param) -> id(dst_param)``.  Dict attributes
    whose keys appear in the map are rekeyed (Adam ``_m``/``_v``, SGD
    ``_velocity``, RMSProp ``_sq``); scalar attributes (``_t``, ``lr``,
    betas) are copied verbatim.  Unknown future state shapes degrade
    gracefully: anything that is a dict keyed by source param ids is
    remapped, any int/float is copied.
    """
    for attr, value in vars(src).items():
        if attr == "params":
            continue
        if isinstance(value, dict):
            remapped = {}
            for key, state in value.items():
                remapped[id_map.get(key, key)] = _clone_value(state)
            setattr(dst, attr, remapped)
        elif isinstance(value, (int, float, bool)):
            setattr(dst, attr, value)


def clone_training_state(src_algorithm, dst_algorithm) -> None:
    """Make ``dst_algorithm`` update-equivalent to ``src_algorithm``.

    Both must be instances of the same algorithm class built with the
    same architecture (the distributed runner guarantees this).  After
    the call, identical ``apply_update`` sequences produce identical
    weights on both replicas.
    """
    if type(src_algorithm) is not type(dst_algorithm):
        raise TypeError(
            "cannot clone training state across algorithm types: "
            f"{type(src_algorithm).__name__} -> "
            f"{type(dst_algorithm).__name__}"
        )
    dst_algorithm.set_weights(src_algorithm.get_weights())
    dst_algorithm.updates_applied = src_algorithm.updates_applied

    # Build the positional id map across *all* module attributes first,
    # so optimizers over any subset of params can be remapped.
    id_map: Dict[int, int] = {}
    for attr, src_value in vars(src_algorithm).items():
        if not isinstance(src_value, Module):
            continue
        dst_value = getattr(dst_algorithm, attr, None)
        if not isinstance(dst_value, Module):
            continue
        src_params = src_value.parameters()
        dst_params = dst_value.parameters()
        if len(src_params) != len(dst_params):
            raise ValueError(
                f"module attribute {attr!r} differs in parameter count: "
                f"{len(src_params)} vs {len(dst_params)}"
            )
        for src_param, dst_param in zip(src_params, dst_params):
            if src_param.data.shape != dst_param.data.shape:
                raise ValueError(
                    f"module attribute {attr!r} has mismatched parameter "
                    f"shapes: {src_param.data.shape} vs {dst_param.data.shape}"
                )
            # Copy data for modules set_weights does not reach (e.g.
            # DQN's target network lives outside the container).
            dst_param.data[...] = src_param.data
            id_map[id(src_param)] = id(dst_param)

    for attr, src_value in vars(src_algorithm).items():
        if not isinstance(src_value, Optimizer):
            continue
        dst_value = getattr(dst_algorithm, attr, None)
        if isinstance(dst_value, Optimizer):
            clone_optimizer_state(src_value, dst_value, id_map)

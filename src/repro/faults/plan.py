"""Fault plans: declarative schedules of timed fault events.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records —
``(time, kind, target, params)`` — describing *what goes wrong when*
during a simulated training run.  Plans are plain data: they can be
built in code, loaded from JSON (``FaultPlan.load`` /
``ExperimentConfig.fault_plan`` / ``repro train --fault-plan``), and
validated without any simulator present.  The
:class:`repro.faults.injector.FaultInjector` turns a plan into scheduled
simulator events against a live experiment.

Event kinds
-----------
``worker-crash``
    The target worker fails, stays down for ``down_for`` seconds, then
    rejoins.  iSwitch strategies drive real ``Leave``/``Join`` control
    traffic (the switch re-derives H); barrier strategies pause the
    worker at its next iteration boundary.
``switch-reset``
    A ``Reset`` control message clears the target switch's aggregation
    engine mid-round; workers recover via Help-driven retransmission.
    Only meaningful for iSwitch strategies (skipped elsewhere).
``link-burst``
    A Gilbert–Elliott burst-loss window of ``duration`` seconds with
    mean loss rate ``loss`` on the target link(s).  Requires a
    loss-tolerant (iSwitch) strategy; skipped elsewhere.
``link-degrade``
    The target link(s) run at ``1/factor`` of their bandwidth for
    ``duration`` seconds.  Applies to every strategy.
``straggler``
    The target worker computes ``slowdown``× slower for ``duration``
    seconds.  Applies to every strategy.

>>> plan = FaultPlan([FaultEvent(0.01, "worker-crash", "worker1",
...                              {"down_for": 0.02})])
>>> plan.validate()
>>> len(demo_plan(0.01))
3
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["FaultEvent", "FaultPlan", "KINDS", "demo_plan"]

#: The closed set of supported fault kinds.
KINDS = (
    "worker-crash",
    "switch-reset",
    "link-burst",
    "link-degrade",
    "straggler",
)

#: JSON schema version written/accepted by save/load.
PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at ``time`` (simulated seconds), do ``kind``
    to ``target`` with ``params``."""

    time: float
    kind: str
    target: str
    params: Dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` if the event is malformed."""
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {KINDS}"
            )
        if not self.target:
            raise ValueError("event target must be a non-empty string")
        p = self.params
        if self.kind == "worker-crash":
            down_for = p.get("down_for")
            if down_for is None or down_for <= 0:
                raise ValueError(
                    f"worker-crash needs params.down_for > 0, got {down_for}"
                )
        elif self.kind == "switch-reset":
            pass  # no parameters
        elif self.kind == "link-burst":
            loss = p.get("loss", 0.02)
            loss_bad = p.get("loss_bad", 0.5)
            if not 0.0 < loss < loss_bad <= 1.0:
                raise ValueError(
                    "link-burst needs 0 < params.loss < params.loss_bad <= 1,"
                    f" got loss={loss}, loss_bad={loss_bad}"
                )
            self._require_duration()
        elif self.kind == "link-degrade":
            factor = p.get("factor")
            if factor is None or factor <= 1.0:
                raise ValueError(
                    f"link-degrade needs params.factor > 1, got {factor}"
                )
            self._require_duration()
        elif self.kind == "straggler":
            slowdown = p.get("slowdown")
            if slowdown is None or slowdown <= 1.0:
                raise ValueError(
                    f"straggler needs params.slowdown > 1, got {slowdown}"
                )
            self._require_duration()

    def _require_duration(self) -> None:
        duration = self.params.get("duration")
        if duration is None or duration <= 0:
            raise ValueError(
                f"{self.kind} needs params.duration > 0, got {duration}"
            )

    def to_dict(self) -> Dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultEvent":
        unknown = set(record) - {"time", "kind", "target", "params"}
        if unknown:
            raise ValueError(f"unknown fault-event keys: {sorted(unknown)}")
        return cls(
            time=float(record["time"]),
            kind=str(record["kind"]),
            target=str(record["target"]),
            params=dict(record.get("params", {})),
        )


class FaultPlan:
    """An ordered collection of fault events (sorted by time)."""

    def __init__(self, events: Optional[List[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = sorted(
            events or [], key=lambda e: e.time
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)
        return self

    def validate(self) -> None:
        """Validate every event; raises ``ValueError`` on the first bad one."""
        for event in self.events:
            event.validate()

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": PLAN_VERSION,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultPlan":
        version = record.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(
                f"unsupported fault-plan version {version!r} "
                f"(this build reads version {PLAN_VERSION})"
            )
        plan = cls([FaultEvent.from_dict(e) for e in record.get("events", [])])
        plan.validate()
        return plan

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def demo_plan(base: float = 12e-3) -> FaultPlan:
    """The acceptance-criteria scenario, scaled by ``base`` (one ~iteration).

    One worker crash + rejoin, one switch Reset, and a 2 % burst-loss
    window — the three headline recovery paths, spread far enough apart
    that each resolves before the next begins.
    """
    if base <= 0:
        raise ValueError(f"base must be > 0, got {base}")
    return FaultPlan(
        [
            FaultEvent(
                2 * base, "worker-crash", "worker1", {"down_for": 3 * base}
            ),
            FaultEvent(7 * base, "switch-reset", "root", {}),
            FaultEvent(
                9 * base,
                "link-burst",
                "*",
                {"loss": 0.02, "duration": 2 * base},
            ),
        ]
    )

"""Scenario-driven fault injection for simulated distributed training.

The subsystem has four parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`:
  declarative, JSON-round-trippable schedules of timed faults.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: hooks a plan
  into the netsim event loop and drives the strategies' recovery
  machinery (Leave/Join/SetH re-membership, Reset, Help/retransmit).
* :mod:`repro.faults.report` — :class:`FaultReport` /
  :class:`FaultRecord`: the structured outcome (recovered / skipped /
  failed, with latencies) attached to ``TrainingResult.fault_report``.
* :mod:`repro.faults.resync` — :func:`clone_training_state`: replica
  resynchronization (weights + optimizer state + target nets) for
  rejoining workers.

Entry points: ``ExperimentConfig(fault_plan=...)`` or
``repro train --fault-plan plan.json``.  See DESIGN.md §6 for the fault
model and EXPERIMENTS.md for the chaos-scenario presets.
"""

from .injector import FaultInjector
from .plan import KINDS, FaultEvent, FaultPlan, demo_plan
from .report import FaultRecord, FaultReport
from .resync import clone_training_state

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultRecord",
    "FaultReport",
    "KINDS",
    "clone_training_state",
    "demo_plan",
]

"""Structured outcomes of a fault-injected run.

Every :class:`~repro.faults.plan.FaultEvent` the injector processes gets
one :class:`FaultRecord` tracking its lifecycle::

    pending -> injected -> recovered
                      \\-> failed
            \\-> skipped

``skipped`` means the event could not apply (strategy without the needed
recovery machinery, unknown target, run ended first) — a *reported*
non-injection, per the contract that every strategy either recovers or
fails with a structured report.  ``failed`` means the fault was injected
but recovery was never observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .plan import FaultEvent

__all__ = ["FaultRecord", "FaultReport"]

#: Lifecycle states of a record.
STATUSES = ("pending", "injected", "recovered", "skipped", "failed")


@dataclass
class FaultRecord:
    """The lifecycle of one fault event through a run."""

    event: FaultEvent
    status: str = "pending"
    #: Human-readable explanation (why skipped/failed, what recovered).
    detail: str = ""
    injected_at: Optional[float] = None
    recovered_at: Optional[float] = None

    @property
    def recovery_latency(self) -> Optional[float]:
        if self.injected_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    def to_dict(self) -> Dict:
        return {
            "event": self.event.to_dict(),
            "status": self.status,
            "detail": self.detail,
            "injected_at": self.injected_at,
            "recovered_at": self.recovered_at,
        }


@dataclass
class FaultReport:
    """All fault records of one run, plus summary helpers."""

    records: List[FaultRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no fault was injected without observed recovery."""
        return all(r.status in ("recovered", "skipped") for r in self.records)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def summary(self) -> List[str]:
        """One line per record, e.g. for the CLI."""
        lines = []
        for r in self.records:
            latency = r.recovery_latency
            tail = f" ({latency * 1e3:.2f} ms to recover)" if latency else ""
            detail = f" - {r.detail}" if r.detail else ""
            lines.append(
                f"[{r.status:>9}] t={r.event.time * 1e3:7.2f} ms "
                f"{r.event.kind} -> {r.event.target}{tail}{detail}"
            )
        return lines

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "records": [r.to_dict() for r in self.records],
        }

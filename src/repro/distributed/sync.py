"""Synchronous distributed training: PS, Ring-AllReduce, and iSwitch.

All three strategies share the same iteration skeleton (the template in
:class:`SyncStrategy`): every worker runs LGC for its modelled duration,
the strategy performs gradient aggregation over the simulated network, and
each worker applies the identical mean gradient (LWU) before starting the
next iteration.  Because the numerics are identical, all synchronous
strategies produce the *same weight trajectory* — only their timing
differs, which is exactly the paper's Table 4 observation ("all
synchronous approaches train the same number of iterations to reach the
same level final average rewards").

Aggregation data paths:

* **SyncParameterServer** (Figure 1a) — workers stream their vectors to
  the PS host; the PS CPU ingests and sums them sequentially (the central
  bottleneck), runs the weight update, and streams the result back to
  every worker over its single link (4 network hops per iteration).
* **RingAllReduce** (Figure 1b) — the standard 2(N−1)-step
  reduce-scatter/all-gather ring over the switch; each step moves M/N
  bytes between ring neighbours (2 hops per step ⇒ 4N−4 hops total) and
  pays the per-step framework overhead.
* **SyncISwitch** (Figure 1c) — workers stream ToS-tagged segments to the
  in-switch accelerator, which aggregates *on the fly at packet
  granularity* and broadcasts completed segments immediately (2 hops,
  pipelined).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.client import AggregationClient
from ..core.hierarchy import configure_aggregation
from ..core.protocol import SegmentPlan
from ..netsim.topology import Network
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile
from .metrics import BusyQueue
from .registry import register_strategy
from .results import TrainingResult
from .transport import VectorReceiver, send_vector
from .worker import SimWorker

__all__ = [
    "SyncStrategy",
    "SyncParameterServer",
    "RingAllReduce",
    "SyncISwitch",
    "make_plan",
]

#: Cap on simulated packet-train events per vector transfer.
MAX_CHUNKS = 64


def make_plan(
    n_elements: int, wire_bytes: int, max_chunks: int = MAX_CHUNKS
) -> SegmentPlan:
    """Build a SegmentPlan for a real vector of ``n_elements`` floats whose
    wire footprint should emulate ``wire_bytes`` (the paper model size)."""
    base = SegmentPlan(n_elements)
    frames_per_chunk = max(1, -(-base.n_frames // max_chunks))
    multiplier = max(1, round(wire_bytes / base.wire_bytes))
    return SegmentPlan(
        n_elements,
        frames_per_chunk=frames_per_chunk,
        wire_multiplier=multiplier,
    )


class SyncStrategy:
    """Template for synchronous training over a simulated network."""

    name = "sync-base"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker")
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.wire_bytes = profile.model_bytes
        self.n_iterations = 0
        self._agg_start: Dict[int, float] = {}
        self._iter_start: Dict[tuple, float] = {}
        self._round_gradients: Dict[int, Dict[int, np.ndarray]] = {}
        self._finished: Dict[int, int] = {}
        self._result: Optional[TrainingResult] = None
        self._setup()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "SyncStrategy":
        """Registry hook: build a runner from an ExperimentConfig."""
        return cls(net, workers, profile, config.cost_model)

    def _setup(self) -> None:
        """Strategy-specific wiring (receivers, clients, server state)."""

    def run(self, n_iterations: int) -> TrainingResult:
        """Simulate ``n_iterations`` synchronous training iterations."""
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=n_iterations,
            elapsed=0.0,
            workers=self.workers,
        )
        self._result = result
        start = self.sim.now
        for worker in self.workers:
            self._start_iteration(worker, 0)
        self.sim.run()
        result.elapsed = self.sim.now - start
        for worker in self.workers:
            result.breakdown.totals = {
                k: result.breakdown.totals[k] + worker.breakdown.totals[k]
                for k in result.breakdown.totals
            }
            result.breakdown.iterations += worker.breakdown.iterations
        return result

    # ------------------------------------------------------------------
    # Iteration skeleton
    # ------------------------------------------------------------------
    def _start_iteration(self, worker: SimWorker, iteration: int) -> None:
        duration = worker.compute.lgc_duration()
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            self._iter_start[(worker.index, iteration)] = self.sim.now

        def lgc_done() -> None:
            worker.breakdown.add_compute(self.profile, duration)
            if telemetry.enabled:
                telemetry.span_at(
                    "compute.lgc",
                    self.sim.now - duration,
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    iteration=iteration,
                )
            gradient = worker.algorithm.compute_gradient()
            self._agg_start[worker.index] = self.sim.now
            self._record_gradient(worker, gradient, iteration)
            self._submit_gradient(worker, gradient, iteration)

        self.sim.schedule(duration, lgc_done, name=f"lgc:w{worker.index}:i{iteration}")

    def _record_gradient(
        self, worker: SimWorker, gradient: np.ndarray, iteration: int
    ) -> None:
        self._round_gradients.setdefault(iteration, {})[worker.index] = gradient

    def _round_sum(self, iteration: int) -> np.ndarray:
        gradients = self._round_gradients[iteration]
        if len(gradients) != len(self.workers):
            raise RuntimeError(
                f"round {iteration} incomplete: {len(gradients)} of "
                f"{len(self.workers)} gradients present"
            )
        total = np.zeros_like(next(iter(gradients.values())), dtype=np.float64)
        for gradient in gradients.values():
            total += gradient
        return total

    def _submit_gradient(
        self, worker: SimWorker, gradient: np.ndarray, iteration: int
    ) -> None:
        raise NotImplementedError

    def _deliver_sum(
        self, worker: SimWorker, summed: np.ndarray, iteration: int
    ) -> None:
        """Called when the summed gradient has fully arrived at a worker."""
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        lwu = worker.compute.lwu_duration()
        agg_time = self.sim.now - self._agg_start.pop(worker.index)
        worker.breakdown.add("grad_aggregation", agg_time + ingest)
        worker.breakdown.add("weight_update", lwu)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.span_at(
                "grad.aggregation",
                self.sim.now - agg_time,
                self.sim.now,
                cat="training",
                track=worker.name,
                iteration=iteration,
            )

        def apply() -> None:
            worker.algorithm.apply_update(
                np.asarray(summed, dtype=np.float64) / len(self.workers)
            )
            worker.finish_iteration()
            if telemetry.enabled:
                started = self._iter_start.pop((worker.index, iteration), None)
                if started is not None:
                    telemetry.span_at(
                        "iteration",
                        started,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        iteration=iteration,
                    )
            if self._result is not None:
                self._result.aggregation_latency.record(agg_time + ingest)
            done = self._finished.get(iteration, 0) + 1
            self._finished[iteration] = done
            if done == len(self.workers):
                self._finished.pop(iteration, None)
                self._round_gradients.pop(iteration, None)
            if iteration + 1 < self.n_iterations:
                self._start_iteration(worker, iteration + 1)

        self.sim.schedule(ingest + lwu, apply, name=f"lwu:w{worker.index}")


@register_strategy("sync", "ps", requires_server=True)
class SyncParameterServer(SyncStrategy):
    """Figure 1a: centralized PS over the regular switch."""

    name = "sync-ps"

    def _setup(self) -> None:
        if self.net.server is None:
            raise ValueError("sync PS needs a topology built with a server host")
        self.server = self.net.server
        self.server_cpu = BusyQueue(self.sim, name="server")
        self._pending: Dict[int, int] = {}
        VectorReceiver(self.server, self._server_on_vector)
        for worker in self.workers:
            worker_self = worker
            VectorReceiver(
                worker.host,
                lambda src, tag, vec, meta, w=worker_self: self._deliver_sum(
                    w, vec, tag
                ),
            )

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        send_vector(
            worker.host,
            self.server.name,
            tag=iteration,
            vector=gradient,
            wire_bytes=self.wire_bytes,
        )

    def _server_on_vector(self, src, iteration, vector, meta) -> None:
        # The PS CPU ingests vectors sequentially — the central bottleneck.
        def ingested() -> None:
            done = self._pending.get(iteration, 0) + 1
            self._pending[iteration] = done
            if done == len(self.workers):
                self._pending.pop(iteration, None)
                update = self.cost.server_update(
                    self.wire_bytes,
                    self.profile.message_count,
                    self.profile.update_cost_factor,
                )
                summed = self._round_sum(iteration)
                self.server_cpu.submit(
                    update, lambda: self._broadcast(summed, iteration)
                )

        self.server_cpu.submit(
            self.cost.server_ingest(self.wire_bytes, self.profile.message_count),
            ingested,
        )

    def _broadcast(self, summed, iteration) -> None:
        for worker in self.workers:
            send_vector(
                self.server,
                worker.name,
                tag=iteration,
                vector=summed,
                wire_bytes=self.wire_bytes,
            )


@register_strategy("sync", "ar")
class RingAllReduce(SyncStrategy):
    """Figure 1b: decentralized ring aggregation (reduce-scatter + all-gather)."""

    name = "sync-ar"

    def _setup(self) -> None:
        n = len(self.workers)
        if n < 2:
            raise ValueError("Ring-AllReduce needs at least 2 workers")
        # One ring per exchanged tensor (DDPG runs two AllReduces).
        self.total_steps = 2 * (n - 1) * self.profile.message_count
        self.chunk_bytes = max(
            1, self.wire_bytes // (n * self.profile.message_count)
        )
        self._lgc_ready: Dict[int, set] = {}
        #: Ring messages that arrived before the receiver finished its own
        #: LGC — it cannot fold them in (it has no local gradient yet).
        self._stalled: Dict[tuple, list] = {}
        for worker in self.workers:
            worker_self = worker
            VectorReceiver(
                worker.host,
                lambda src, tag, vec, meta, w=worker_self: self._on_ring_message(
                    w, tag
                ),
                port=7801,
            )

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        self._lgc_ready.setdefault(iteration, set()).add(worker.index)
        self._send_step(worker, iteration, step=0)
        for step in self._stalled.pop((iteration, worker.index), []):
            self._process_ring_message(worker, iteration, step)

    def _send_step(self, worker, iteration, step) -> None:
        if step >= self.total_steps:
            return
        neighbour = self.workers[(worker.index + 1) % len(self.workers)]
        send_vector(
            worker.host,
            neighbour.name,
            tag=(iteration, step),
            vector=None,  # partial sums are timing-only; math happens at the end
            wire_bytes=self.chunk_bytes,
            port=7801,
            max_chunks=8,
        )

    def _on_ring_message(self, worker, tag) -> None:
        iteration, step = tag
        if worker.index not in self._lgc_ready.get(iteration, ()):
            # Fast neighbour: the chunk waits until this worker's own
            # gradient exists to be folded in.
            self._stalled.setdefault((iteration, worker.index), []).append(step)
            return
        self._process_ring_message(worker, iteration, step)

    def _process_ring_message(self, worker, iteration, step) -> None:
        # Per-step reduction cost on the receiving host, then forward the
        # next step (or finish after the final all-gather step).
        def reduced() -> None:
            if step + 1 < self.total_steps:
                self._send_step(worker, iteration, step + 1)
            else:
                self._finish_ring(worker, iteration)

        self.sim.schedule(self.cost.allreduce_step(self.chunk_bytes), reduced)

    def _finish_ring(self, worker, iteration) -> None:
        summed = self._round_sum(iteration)
        self._deliver_sum(worker, summed, iteration)


@register_strategy("sync", "isw", requires_iswitch=True)
class SyncISwitch(SyncStrategy):
    """Figure 1c: in-switch aggregation via the accelerator data plane."""

    name = "sync-isw"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        recovery_timeout: Optional[float] = None,
    ) -> None:
        # _setup() runs inside the base __init__, so the timeout must be
        # in place before delegating.
        self.recovery_timeout = recovery_timeout
        super().__init__(net, workers, profile, cost_model)

    @classmethod
    def create(cls, net, workers, profile, config) -> "SyncISwitch":
        return cls(
            net,
            workers,
            profile,
            config.cost_model,
            recovery_timeout=config.resolved_recovery_timeout(),
        )

    def _setup(self) -> None:
        configure_aggregation(self.net)
        n_params = self.workers[0].algorithm.n_params
        self.plan = make_plan(n_params, self.wire_bytes)
        self.clients: List[AggregationClient] = []
        for worker, tor in zip(self.workers, self.net.tor_of_worker):
            worker_self = worker
            client = AggregationClient(
                worker.host,
                tor.name,
                self.plan,
                on_round_complete=lambda rnd, vec, w=worker_self: self._deliver_sum(
                    w, vec, rnd
                ),
                recovery_timeout=self.recovery_timeout,
            )
            self.clients.append(client)

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        self.clients[worker.index].send_gradient(
            gradient.astype(np.float32), round_index=iteration
        )

"""Synchronous distributed training: PS, Ring-AllReduce, and iSwitch.

All strategies share the same iteration skeleton (the template in
:class:`SyncStrategy`): every worker runs LGC for its modelled duration,
the strategy performs gradient aggregation over the simulated network, and
each worker applies the identical mean gradient (LWU) before starting the
next iteration.  Because the numerics are identical, all synchronous
strategies produce the *same weight trajectory* — only their timing
differs, which is exactly the paper's Table 4 observation ("all
synchronous approaches train the same number of iterations to reach the
same level final average rewards").

Aggregation is delegated to the composable primitives in
:mod:`repro.distributed.collectives`; a strategy is a thin composition:

* **SyncParameterServer** (Figure 1a) — :class:`PsGather` (workers
  stream vectors to the PS host, whose CPU ingests and sums sequentially
  — the central bottleneck) + :class:`PsScatter` (single-link fan-out of
  the result): 4 network hops per iteration.
* **RingAllReduce** (Figure 1b) — :func:`ring_reduce_scatter` +
  :func:`ring_all_gather` over a :class:`RingExchange`: 2(N−1) steps of
  M/N bytes between ring neighbours (2 hops per step ⇒ 4N−4 hops) each
  paying the per-step framework overhead.
* **HalvingDoublingAllReduce** — the same :class:`RingExchange`
  machinery on hypercube schedules (:func:`hd_reduce_scatter` +
  :func:`hd_all_gather`): 2·log2(N) steps pairing ``i`` with
  ``i XOR 2^k``, trading per-step overheads for larger messages.
* **SyncISwitch** (Figure 1c) — :class:`ISwitchStream`: workers stream
  ToS-tagged segments to the in-switch accelerator, which aggregates
  *on the fly at packet granularity* and broadcasts completed segments
  immediately (2 hops, pipelined).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netsim.topology import Network
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile
from .collectives import (
    ISwitchStream,
    PsGather,
    PsScatter,
    RingExchange,
    RoundBarrier,
    hd_all_gather,
    hd_reduce_scatter,
    make_plan,
    ring_all_gather,
    ring_reduce_scatter,
)
from .collectives.iswitch import MAX_CHUNKS
from .config import resolve_codec as _resolve_codec
from .metrics import BusyQueue
from .registry import register_strategy
from .results import TrainingResult
from .worker import SimWorker

__all__ = [
    "SyncStrategy",
    "SyncParameterServer",
    "RingAllReduce",
    "HalvingDoublingAllReduce",
    "SyncISwitch",
    "make_plan",
    "MAX_CHUNKS",
]

#: Port HalvingDoublingAllReduce uses for its exchange steps (the ring
#: keeps its historical 7801).
HD_PORT = 7802


class SyncStrategy:
    """Template for synchronous training over a simulated network."""

    name = "sync-base"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker")
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.wire_bytes = profile.model_bytes
        self.n_iterations = 0
        self._agg_start: Dict[int, float] = {}
        self._iter_start: Dict[tuple, float] = {}
        self._round_gradients: Dict[int, Dict[int, np.ndarray]] = {}
        self._round_done = RoundBarrier(
            len(workers), self._round_gradients_release
        )
        self._result: Optional[TrainingResult] = None
        #: Fault-injection state: workers paused by a crash event, and
        #: the iteration each paused worker will restart at on recovery.
        self._paused: Dict[int, bool] = {}
        self._deferred: Dict[int, int] = {}
        self._setup()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "SyncStrategy":
        """Registry hook: build a runner from an ExperimentConfig."""
        return cls(net, workers, profile, config.cost_model)

    def _setup(self) -> None:
        """Strategy-specific wiring: compose collective primitives here."""

    def run(self, n_iterations: int) -> TrainingResult:
        """Simulate ``n_iterations`` synchronous training iterations."""
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=n_iterations,
            elapsed=0.0,
            workers=self.workers,
        )
        self._result = result
        start = self.sim.now
        for worker in self.workers:
            self._start_iteration(worker, 0)
        self.sim.run()
        result.elapsed = self.sim.now - start
        for worker in self.workers:
            result.breakdown.totals = {
                k: result.breakdown.totals[k] + worker.breakdown.totals[k]
                for k in result.breakdown.totals
            }
            result.breakdown.iterations += worker.breakdown.iterations
        return result

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def _fault_admit(self, worker: SimWorker, iteration: int) -> bool:
        """Gate on iteration start: False stops this worker's progression.

        The base (barrier) semantics of a crash are a *pause*: the worker
        defers its next iteration, the round barrier stalls every peer
        (exactly what a synchronous barrier does to a dead worker), and
        on restore the deferred iteration runs — no math changes, so the
        final weights are bit-identical to the fault-free run.
        """
        if self._paused.get(worker.index, False):
            self._deferred[worker.index] = iteration
            return False
        return True

    def _round_divisor(self, iteration: int) -> int:
        """Contributor count the round's summed gradient is divided by.

        Constant for barrier strategies; :class:`SyncISwitch` overrides
        it to track membership changes from crash/rejoin events.
        """
        return len(self.workers)

    def fault_crash_worker(self, worker: SimWorker) -> bool:
        self._paused[worker.index] = True
        return True

    def fault_restore_worker(self, worker: SimWorker) -> bool:
        self._paused.pop(worker.index, None)
        deferred = self._deferred.pop(worker.index, None)
        if deferred is not None:
            self._start_iteration(worker, deferred)
        return True

    # ------------------------------------------------------------------
    # Iteration skeleton
    # ------------------------------------------------------------------
    def _start_iteration(self, worker: SimWorker, iteration: int) -> None:
        if not self._fault_admit(worker, iteration):
            return
        duration = worker.compute.lgc_duration()
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            self._iter_start[(worker.index, iteration)] = self.sim.now

        def lgc_done() -> None:
            worker.breakdown.add_compute(self.profile, duration)
            if telemetry.enabled:
                telemetry.span_at(
                    "compute.lgc",
                    self.sim.now - duration,
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    iteration=iteration,
                )
            gradient = worker.algorithm.compute_gradient()
            self._agg_start[worker.index] = self.sim.now
            self._record_gradient(worker, gradient, iteration)
            self._submit_gradient(worker, gradient, iteration)

        self.sim.schedule(duration, lgc_done, name=f"lgc:w{worker.index}:i{iteration}")

    def _record_gradient(
        self, worker: SimWorker, gradient: np.ndarray, iteration: int
    ) -> None:
        self._round_gradients.setdefault(iteration, {})[worker.index] = gradient

    def _round_gradients_release(self, iteration: int) -> None:
        self._round_gradients.pop(iteration, None)

    def _round_sum(self, iteration: int) -> np.ndarray:
        gradients = self._round_gradients[iteration]
        if len(gradients) != len(self.workers):
            raise RuntimeError(
                f"round {iteration} incomplete: {len(gradients)} of "
                f"{len(self.workers)} gradients present"
            )
        total = np.zeros_like(next(iter(gradients.values())), dtype=np.float64)
        for gradient in gradients.values():
            total += gradient
        return total

    def _submit_gradient(
        self, worker: SimWorker, gradient: np.ndarray, iteration: int
    ) -> None:
        raise NotImplementedError

    def _deliver_sum(
        self, worker: SimWorker, summed: np.ndarray, iteration: int
    ) -> None:
        """Called when the summed gradient has fully arrived at a worker."""
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        lwu = worker.compute.lwu_duration()
        agg_time = self.sim.now - self._agg_start.pop(worker.index)
        worker.breakdown.add("grad_aggregation", agg_time + ingest)
        worker.breakdown.add("weight_update", lwu)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.span_at(
                "grad.aggregation",
                self.sim.now - agg_time,
                self.sim.now,
                cat="training",
                track=worker.name,
                iteration=iteration,
            )

        # Hoist the float64 conversion out of the deferred apply: the sum
        # is never mutated between now and the apply event, so converting
        # here is value-identical and the copy (when one is needed) can be
        # divided in place instead of allocating a second array.  A sum
        # that is already float64 may be shared across workers (PS/AR
        # broadcast), so only a private copy is divided in place.
        if summed.dtype == np.float64:
            summed64, owned = summed, False
        else:
            summed64, owned = summed.astype(np.float64), True

        def apply() -> None:
            if owned:
                update = np.divide(
                    summed64, self._round_divisor(iteration), out=summed64
                )
            else:
                update = summed64 / self._round_divisor(iteration)
            worker.algorithm.apply_update(update)
            worker.finish_iteration()
            if telemetry.enabled:
                started = self._iter_start.pop((worker.index, iteration), None)
                if started is not None:
                    telemetry.span_at(
                        "iteration",
                        started,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        iteration=iteration,
                    )
            if self._result is not None:
                self._result.aggregation_latency.record(agg_time + ingest)
            self._round_done.arrive(iteration)
            if iteration + 1 < self.n_iterations:
                self._start_iteration(worker, iteration + 1)

        self.sim.schedule(ingest + lwu, apply, name=f"lwu:w{worker.index}")


@register_strategy("sync", "ps", requires_server=True, supports_live=True)
class SyncParameterServer(SyncStrategy):
    """Figure 1a: centralized PS = ``ps_gather`` + ``ps_scatter``."""

    name = "sync-ps"

    def _setup(self) -> None:
        if self.net.server is None:
            raise ValueError("sync PS needs a topology built with a server host")
        self.server = self.net.server
        self.server_cpu = BusyQueue(self.sim, name="server")
        self.gather = PsGather(
            self.server,
            self.server_cpu,
            ingest_cost=self.cost.server_ingest(
                self.wire_bytes, self.profile.message_count
            ),
            threshold=len(self.workers),
            on_round=self._round_complete,
        )
        self.scatter = PsScatter(
            self.server,
            self.workers,
            on_deliver=lambda w, tag, vec, meta: self._deliver_sum(w, vec, tag),
        )

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        self.gather.submit(
            worker, iteration, gradient, wire_bytes=self.wire_bytes
        )

    def _round_complete(self, iteration) -> None:
        # The Nth ingest finished: run the weight update on the PS CPU,
        # then fan the summed gradient out over its single link.
        update = self.cost.server_update(
            self.wire_bytes,
            self.profile.message_count,
            self.profile.update_cost_factor,
        )
        summed = self._round_sum(iteration)
        self.server_cpu.submit(
            update,
            lambda: self.scatter.broadcast(
                iteration, summed, wire_bytes=self.wire_bytes
            ),
        )


class _ExchangeAllReduce(SyncStrategy):
    """Shared shape of the decentralized strategies: a chained exchange
    whose transfers are timing-only, folding the true sum at the end."""

    #: Subclasses build and return the :class:`RingExchange`.
    def _build_exchange(self) -> RingExchange:
        raise NotImplementedError

    def _setup(self) -> None:
        if len(self.workers) < 2:
            raise ValueError(f"{self.name} needs at least 2 workers")
        self.exchange = self._build_exchange()
        self.total_steps = self.exchange.total_steps

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        self.exchange.start(worker, iteration)

    def _finish_exchange(self, worker, iteration) -> None:
        self._deliver_sum(worker, self._round_sum(iteration), iteration)


@register_strategy("sync", "ar", supports_live=True)
class RingAllReduce(_ExchangeAllReduce):
    """Figure 1b: decentralized ring aggregation (reduce-scatter + all-gather)."""

    name = "sync-ar"

    def _build_exchange(self) -> RingExchange:
        n = len(self.workers)
        # One ring per exchanged tensor (DDPG runs two AllReduces).
        messages = self.profile.message_count
        self.chunk_bytes = max(1, self.wire_bytes // (n * messages))
        return RingExchange(
            self.sim,
            self.workers,
            phases=[
                ring_reduce_scatter(n, self.chunk_bytes, messages),
                ring_all_gather(n, self.chunk_bytes, messages),
            ],
            step_cost=self.cost.allreduce_step,
            on_complete=self._finish_exchange,
            name="ring",
        )


@register_strategy("sync", "ar-hd", supports_live=True)
class HalvingDoublingAllReduce(_ExchangeAllReduce):
    """Recursive-halving/doubling allreduce: 2·log2(N) hypercube steps.

    Versus the ring's 2(N−1) steps, far fewer per-step framework
    overheads — the latency-optimal choice for small models or moderate
    worker counts.  Requires a power-of-two worker count.
    """

    name = "sync-ar-hd"

    def _build_exchange(self) -> RingExchange:
        n = len(self.workers)
        messages = self.profile.message_count
        return RingExchange(
            self.sim,
            self.workers,
            phases=[
                hd_reduce_scatter(n, self.wire_bytes, messages),
                hd_all_gather(n, self.wire_bytes, messages),
            ],
            step_cost=self.cost.allreduce_step,
            on_complete=self._finish_exchange,
            port=HD_PORT,
            name="ar_hd",
        )


@register_strategy(
    "sync",
    "isw",
    requires_iswitch=True,
    supports_live=True,
    supports_multijob=True,
)
class SyncISwitch(SyncStrategy):
    """Figure 1c: in-switch aggregation = one ``iswitch_stream``.

    Fault behaviour (the paper's membership management, §3.4): a worker
    crash is a real ``Leave`` — the switch drops the member, re-derives
    the aggregation threshold H, and sweeps any round stranded at the
    old threshold; surviving workers keep iterating with N−1
    contributors (the per-round divisor tracks membership).  Rejoin is a
    real ``Join`` plus replica resynchronization (weights *and*
    optimizer state cloned from a live peer) before the worker re-enters
    the iteration loop.
    """

    name = "sync-isw"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        recovery_timeout: Optional[float] = None,
        max_recovery_attempts: Optional[int] = None,
        job: int = 0,
        codec=None,
    ) -> None:
        # _setup() runs inside the base __init__, so the timeout must be
        # in place before delegating.
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        self.job = job
        self.codec = codec
        #: Membership-fault state: crashes waiting to take effect at the
        #: target's next iteration boundary, currently-down workers, the
        #: queue of rejoin requests, and the append-only
        #: ``(first_iteration, contributor_count)`` divisor history.
        self._pending_crash: Dict[int, bool] = {}
        self._down: set = set()
        self._pending_rejoins: List[int] = []
        self._divisor_changes: List[tuple] = [(0, len(workers))]
        super().__init__(net, workers, profile, cost_model)

    @classmethod
    def create(cls, net, workers, profile, config) -> "SyncISwitch":
        fault_armed = getattr(config, "fault_plan", None) is not None
        return cls(
            net,
            workers,
            profile,
            config.cost_model,
            recovery_timeout=config.resolved_recovery_timeout(),
            # Bounded retries keep the event loop drainable when a fault
            # leaves a round permanently unsatisfiable.
            max_recovery_attempts=64 if fault_armed else None,
            job=getattr(config, "job_id", 0),
            codec=_resolve_codec(config),
        )

    def _setup(self) -> None:
        self.stream = ISwitchStream(
            self.net,
            self.workers,
            self.wire_bytes,
            on_round=lambda w, rnd, vec: self._deliver_sum(w, vec, rnd),
            recovery_timeout=self.recovery_timeout,
            max_recovery_attempts=self.max_recovery_attempts,
            job=getattr(self, "job", 0),
            codec=getattr(self, "codec", None),
        )
        self.plan = self.stream.plan
        self.clients = self.stream.clients

    def _submit_gradient(self, worker, gradient, iteration) -> None:
        self.stream.submit(worker, gradient, iteration)

    # ------------------------------------------------------------------
    # Fault hooks: real Leave/Join membership churn
    # ------------------------------------------------------------------
    def _fault_admit(self, worker, iteration: int) -> bool:
        # Rejoins are applied at the first *live* worker's iteration
        # boundary: at that instant every live worker is at iteration
        # `iteration` or awaiting `iteration - 1`'s broadcast (workers
        # are at most one round apart), so `iteration` is exactly the
        # first round the rejoined member contributes to.
        if self._pending_rejoins and worker.index not in self._down:
            self._apply_rejoin(worker, iteration)
        if worker.index in self._down:
            return False  # crashed replica: restarted explicitly on rejoin
        if self._pending_crash.pop(worker.index, None):
            # Consumed at the crashing worker's own boundary, before it
            # drew this round's LGC duration or streamed anything for
            # `iteration` — so the round completes cleanly with N−1.
            self._apply_crash(worker, iteration)
            return False
        return True

    def _round_divisor(self, iteration: int) -> int:
        divisor = self._divisor_changes[0][1]
        for since, value in self._divisor_changes:
            if since <= iteration:
                divisor = value
        return divisor

    def _active_count(self) -> int:
        return len(self.workers) - len(self._down)

    def fault_crash_worker(self, worker) -> bool:
        live = self._active_count() - sum(
            1 for flag in self._pending_crash.values() if flag
        )
        if live <= 1 or worker.index in self._down:
            return False
        self._pending_crash[worker.index] = True
        return True

    def fault_restore_worker(self, worker) -> bool:
        if self._pending_crash.pop(worker.index, None):
            return True  # restored before the crash ever took effect
        if worker.index in self._down:
            self._pending_rejoins.append(worker.index)
        return True

    def fault_reset_switch(self, switch) -> bool:
        # Prefer a real Reset control packet from a live member of that
        # switch; fall back to an out-of-band engine reset (models an
        # operator reset of a switch none of our members sit under).
        for index, tor in enumerate(self.net.tor_of_worker):
            if tor.name == switch.name and index not in self._down:
                self.clients[index].reset_switch()
                return True
        switch.engine.reset()
        return True

    def _apply_crash(self, worker, iteration: int) -> None:
        self._down.add(worker.index)
        self._divisor_changes.append((iteration, self._active_count()))
        client = self.clients[worker.index]
        client.cancel_recovery()
        client.leave()

    def _apply_rejoin(self, trigger, iteration: int) -> None:
        from ..faults.resync import clone_training_state

        rejoining, self._pending_rejoins = self._pending_rejoins, []
        for index in rejoining:
            self._down.discard(index)
        self._divisor_changes.append((iteration, self._active_count()))
        for index in rejoining:
            worker = self.workers[index]
            # The trigger just applied round `iteration - 1`, so its
            # replica holds exactly the weights round `iteration` starts
            # from; clone weights + optimizer state (+ target nets).
            clone_training_state(trigger.algorithm, worker.algorithm)
            client = self.clients[index]
            # Broadcast fragments of rounds missed while down can never
            # complete; drop them before re-entering.
            client._partial.clear()
            # The Join lands at the switch in microseconds — long before
            # any live worker's ~ms LGC for `iteration` finishes — so H
            # is back at full strength before round `iteration` can
            # complete short.
            client.join()
            self._start_iteration(worker, iteration)
        for stale in [r for r in self._round_gradients if r < iteration]:
            self._round_gradients.pop(stale, None)

"""The in-switch collective: ToS-tagged segment streaming (Figure 1c).

An :class:`ISwitchStream` owns one
:class:`~repro.core.client.AggregationClient` per worker, all sharing a
single :class:`~repro.core.protocol.SegmentPlan`.  Submitting a gradient
streams its segments to the worker's ToR accelerator, which aggregates
at packet granularity and broadcasts completed segments immediately —
the paper's 2-hop data path.  The primitive also carries the
accelerator-engine knobs asynchronous training needs (explicit threshold
H, arrival-order renumbering, bounded buffering), so strategies never
touch switch engines directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ...core.client import AggregationClient
from ...core.hierarchy import aggregation_switches, configure_aggregation
from ...core.protocol import SegmentPlan
from .base import HandleLedger

__all__ = ["ISwitchStream", "iswitch_stream", "make_plan", "MAX_CHUNKS"]

#: Cap on simulated packet-train events per vector transfer.
MAX_CHUNKS = 64


def make_plan(
    n_elements: int, wire_bytes: int, max_chunks: int = MAX_CHUNKS, codec=None
) -> SegmentPlan:
    """Build a SegmentPlan for a real vector of ``n_elements`` floats whose
    wire footprint should emulate ``wire_bytes`` (the paper model size).

    ``codec`` applies that codec's frame geometry (element width and
    per-frame overhead), shrinking the wire footprint accordingly.  The
    emulation multiplier is always derived from the *fp32* footprint —
    it counts how many copies of the paper model the real vector stands
    in for, which is codec-independent, so a codec's bytes-on-wire
    reduction shows up undiluted in the accounting.
    """
    base = SegmentPlan(n_elements)
    frames_per_chunk = max(1, -(-base.n_frames // max_chunks))
    multiplier = max(1, round(wire_bytes / base.wire_bytes))
    if codec is None:
        return SegmentPlan(
            n_elements,
            frames_per_chunk=frames_per_chunk,
            wire_multiplier=multiplier,
        )
    return SegmentPlan(
        n_elements,
        frames_per_chunk=frames_per_chunk,
        wire_multiplier=multiplier,
        bytes_per_element=codec.bytes_per_element,
        frame_overhead=codec.frame_overhead,
    )


class ISwitchStream:
    """Per-worker aggregation clients over the in-switch fabric.

    ``on_round(worker, round_index, vector)`` fires on each worker as the
    switch's broadcast of that round fully reassembles there.
    """

    def __init__(
        self,
        net,
        workers: List,
        wire_bytes: int,
        on_round: Callable[[object, int, np.ndarray], None],
        recovery_timeout: Optional[float] = None,
        threshold: Optional[int] = None,
        arrival_renumber: bool = False,
        buffer_rounds: Optional[int] = None,
        max_recovery_attempts: Optional[int] = None,
        on_round_abandoned: Optional[Callable[[object, int], None]] = None,
        name: str = "iswitch_stream",
        job: int = 0,
        codec=None,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.on_round = on_round
        self.name = name
        self.job = job
        self.codec = codec
        configure_aggregation(net, job=job)
        switches = aggregation_switches(net)
        n_params = workers[0].algorithm.n_params
        self.plan = make_plan(n_params, wire_bytes, codec=codec)
        self.handles = HandleLedger(name, self.sim)
        # Leaf switches aggregate their local members; an explicit H only
        # makes sense in the flat (single-switch) deployment.
        if threshold is not None:
            if len(switches) != 1:
                raise ValueError(
                    "explicit H is only supported on a single-switch topology"
                )
            switches[0].jobs.get(job).engine.set_threshold(threshold)
        if arrival_renumber:
            for switch in switches:
                # Arrival-order renumbering gives the paper's true async
                # semantics: the next H arriving vectors form a round,
                # letting fast workers contribute more than once.
                engine = switch.jobs.get(job).engine
                engine.arrival_renumber = self.plan.n_chunks
                if buffer_rounds is not None:
                    engine.buffer_limit = self.plan.n_chunks * buffer_rounds
        self.clients: List[AggregationClient] = []
        for worker, tor in zip(workers, net.tor_of_worker):
            worker_self = worker
            client = AggregationClient(
                worker.host,
                tor.name,
                self.plan,
                on_round_complete=lambda rnd, vec, w=worker_self: self._complete(
                    w, rnd, vec
                ),
                recovery_timeout=recovery_timeout,
                job=job,
                codec=codec,
                max_recovery_attempts=max_recovery_attempts,
                on_round_abandoned=(
                    None
                    if on_round_abandoned is None
                    else lambda rnd, w=worker_self: on_round_abandoned(w, rnd)
                ),
            )
            self.clients.append(client)

    # ------------------------------------------------------------------
    def submit(self, worker, gradient: np.ndarray, round_index: int) -> None:
        """Stream one gradient contribution into round ``round_index``."""
        self.handles.get(round_index, expected=len(self.workers)).mark_started(
            worker.name
        )
        self.clients[worker.index].send_gradient(
            gradient.astype(np.float32), round_index=round_index
        )

    def _complete(self, worker, round_index: int, vector: np.ndarray) -> None:
        self.handles.complete(round_index, worker.name)
        self.on_round(worker, round_index, vector)

    # ------------------------------------------------------------------
    @property
    def rounds_completed(self) -> int:
        """Aggregation rounds fully reassembled across all clients."""
        return sum(c.rounds_completed for c in self.clients)


def iswitch_stream(net, workers, wire_bytes, on_round, **kwargs) -> ISwitchStream:
    """Build an :class:`ISwitchStream` (functional spelling)."""
    return ISwitchStream(net, workers, wire_bytes, on_round, **kwargs)

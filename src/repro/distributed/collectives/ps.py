"""Hub-based collective primitives: gather into, and scatter from, one host.

These model the parameter-server data path (Figure 1a): every pushed
vector crosses the hub's single link, and the hub's CPU — a
:class:`~repro.distributed.metrics.BusyQueue` — ingests vectors strictly
sequentially, which is the central bottleneck the paper measures.  The
same primitives back the *sharded* variant, where several hub instances
(one per shard, each with its own CPU queue and link) split the load.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Union

import numpy as np

from ...netsim.node import Host
from ..transport import VECTOR_PORT, VectorReceiver, send_vector
from .base import HandleLedger, RoundBarrier

__all__ = ["PsGather", "PsScatter", "ps_gather", "ps_scatter"]

#: Either a fixed CPU occupancy in seconds or a per-vector cost callable
#: ``(src, tag, vector, meta) -> seconds``.
IngestCost = Union[float, Callable[[str, Any, Optional[np.ndarray], Any], float]]


class PsGather:
    """Workers push vectors to a hub host whose CPU ingests sequentially.

    Each received vector occupies the hub CPU for ``ingest_cost`` seconds
    (queued back to back with everything else the hub does), then
    ``on_vector(src, tag, vector, meta)`` fires.  With ``threshold`` set,
    ``on_round(tag)`` additionally fires inside the event that ingests
    the threshold-th vector of a tag — the synchronous-PS round barrier.
    """

    def __init__(
        self,
        hub: Host,
        cpu,
        ingest_cost: IngestCost,
        on_vector: Optional[Callable[[str, Any, Optional[np.ndarray], Any], None]] = None,
        threshold: Optional[int] = None,
        on_round: Optional[Callable[[Any], None]] = None,
        port: int = VECTOR_PORT,
        name: str = "ps_gather",
    ) -> None:
        self.hub = hub
        self.sim = hub.sim
        self.cpu = cpu
        self.ingest_cost = ingest_cost
        self.on_vector = on_vector
        self.on_round = on_round
        self.port = port
        self.name = name
        self.handles = HandleLedger(name, self.sim)
        self._expected = threshold if threshold is not None else 1
        self._barrier = (
            RoundBarrier(threshold, self._round_complete)
            if threshold is not None
            else None
        )
        VectorReceiver(hub, self._receive, port=port)

    # ------------------------------------------------------------------
    def submit(
        self,
        worker,
        tag: Any,
        vector: Optional[np.ndarray],
        wire_bytes: int,
        meta: Any = None,
    ) -> None:
        """Stream one contribution from ``worker`` to the hub."""
        self.handles.get(tag, expected=self._expected).mark_started(worker.name)
        send_vector(
            worker.host,
            self.hub.name,
            tag=tag,
            vector=vector,
            wire_bytes=wire_bytes,
            port=self.port,
            meta=meta,
        )

    def submit_local(
        self, worker, tag: Any, vector: Optional[np.ndarray], meta: Any = None
    ) -> None:
        """Contribute without crossing the wire (hub co-located with worker).

        The contribution still occupies the hub CPU like any other; only
        the network hop is skipped.
        """
        self.handles.get(tag, expected=self._expected).mark_started(worker.name)
        self._ingest(worker.name, tag, vector, meta)

    # ------------------------------------------------------------------
    def _receive(self, src: str, tag: Any, vector, meta) -> None:
        self._ingest(src, tag, vector, meta)

    def _ingest(self, src: str, tag: Any, vector, meta) -> None:
        cost = self.ingest_cost
        busy = cost(src, tag, vector, meta) if callable(cost) else cost

        def ingested() -> None:
            self.handles.complete(tag, src)
            if self.on_vector is not None:
                self.on_vector(src, tag, vector, meta)
            if self._barrier is not None:
                self._barrier.arrive(tag)

        self.cpu.submit(busy, ingested)

    def _round_complete(self, tag: Any) -> None:
        if self.on_round is not None:
            self.on_round(tag)


class PsScatter:
    """A hub host fans vectors out to workers over its single link.

    ``on_deliver(worker, tag, vector, meta)`` fires on the receiving
    worker when a flow fully lands.  A broadcast serializes N copies
    through the hub's one transmit queue — the PS downlink bottleneck.
    """

    def __init__(
        self,
        hub: Host,
        workers: List,
        on_deliver: Callable[[Any, Any, Optional[np.ndarray], Any], None],
        port: int = VECTOR_PORT,
        name: str = "ps_scatter",
    ) -> None:
        self.hub = hub
        self.sim = hub.sim
        self.workers = workers
        self.on_deliver = on_deliver
        self.port = port
        self.name = name
        self.handles = HandleLedger(name, self.sim)
        for worker in workers:
            worker_self = worker
            VectorReceiver(
                worker.host,
                lambda src, tag, vec, meta, w=worker_self: self._deliver(
                    w, tag, vec, meta
                ),
                port=port,
            )

    # ------------------------------------------------------------------
    def broadcast(
        self,
        tag: Any,
        vector: Optional[np.ndarray],
        wire_bytes: int,
        meta: Any = None,
    ) -> None:
        """Send one vector to every worker (single-link fan-out)."""
        for worker in self.workers:
            self.send_to(worker, tag, vector, wire_bytes, meta=meta)

    def send_to(
        self,
        worker,
        tag: Any,
        vector: Optional[np.ndarray],
        wire_bytes: int,
        meta: Any = None,
    ) -> None:
        """Send one vector to one worker."""
        handle = self.handles.get(tag)
        handle.expected += 1
        handle.mark_started(worker.name)
        if worker.host is self.hub:
            # Shard co-located with the worker: no wire, deliver in place.
            self._deliver(worker, tag, vector, meta)
            return
        send_vector(
            self.hub,
            worker.name,
            tag=tag,
            vector=vector,
            wire_bytes=wire_bytes,
            port=self.port,
            meta=meta,
        )

    # ------------------------------------------------------------------
    def _deliver(self, worker, tag: Any, vector, meta) -> None:
        self.handles.complete(tag, worker.name)
        self.on_deliver(worker, tag, vector, meta)


def ps_gather(hub, cpu, ingest_cost, **kwargs) -> PsGather:
    """Build a :class:`PsGather` (functional spelling of the primitive)."""
    return PsGather(hub, cpu, ingest_cost, **kwargs)


def ps_scatter(hub, workers, on_deliver, **kwargs) -> PsScatter:
    """Build a :class:`PsScatter` (functional spelling of the primitive)."""
    return PsScatter(hub, workers, on_deliver, **kwargs)

"""Chained peer-exchange collectives: ring and hypercube schedules.

A :class:`RingExchange` runs each participant through a fixed chain of
steps.  At step ``s`` a worker sends a timing-only chunk to a
schedule-defined peer, and on receiving its own step-``s`` chunk pays the
per-step framework cost before issuing step ``s+1``.  The partial sums
are timing-only (``vector=None`` flows); the true reduction is computed
once, at completion, by the strategy — every worker folds the identical
sum, which is what keeps all synchronous data paths on the same weight
trajectory.

Two schedule families are provided:

* **Ring** (Figure 1b): :func:`ring_reduce_scatter` +
  :func:`ring_all_gather` — 2(N−1) steps of M/N bytes to the next
  neighbour, the classic bandwidth-optimal but latency-poor ring.
* **Hypercube** (recursive halving/doubling): :func:`hd_reduce_scatter`
  + :func:`hd_all_gather` — 2·log2(N) steps pairing worker ``i`` with
  ``i XOR 2^k``, halving the payload each reduce step.  Far fewer
  per-step overheads, which wins on small models and moderate N.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..transport import VectorReceiver, send_vector
from .base import HandleLedger

__all__ = [
    "RingSchedule",
    "RingExchange",
    "ring_reduce_scatter",
    "ring_all_gather",
    "hd_reduce_scatter",
    "hd_all_gather",
    "RING_PORT",
]

#: Port the sync Ring-AllReduce has always used for its step messages.
RING_PORT = 7801


class RingSchedule:
    """One phase of a chained exchange: per-step peers and byte counts.

    ``peer_of(worker_index, step)`` must be symmetric — if ``a`` sends to
    ``b`` at a step, ``b`` sends to ``a`` — or, for the classic ring,
    form a single cycle so every send has a matching receive.
    ``step`` is phase-local (0-based within the phase).
    """

    def __init__(
        self,
        n_steps: int,
        peer_of: Callable[[int, int], int],
        bytes_of: Callable[[int], int],
        label: str = "phase",
    ) -> None:
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        self.n_steps = n_steps
        self.peer_of = peer_of
        self.bytes_of = bytes_of
        self.label = label


class RingExchange:
    """Runs workers through the concatenated steps of several phases.

    A worker enters with :meth:`start` once its own contribution is ready
    (its LGC finished).  Chunks that arrive at a worker *before* it
    started are stalled — the receiver has no local value to fold them
    into — and are processed the moment it enters, exactly the
    fast-neighbour behaviour of the original Ring-AllReduce.
    """

    def __init__(
        self,
        sim,
        workers: List,
        phases: List[RingSchedule],
        step_cost: Callable[[int], float],
        on_complete: Callable[[Any, Any], None],
        port: int = RING_PORT,
        max_chunks: int = 8,
        name: str = "ring",
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.sim = sim
        self.workers = workers
        self.phases = phases
        self.step_cost = step_cost
        self.on_complete = on_complete
        self.port = port
        self.max_chunks = max_chunks
        self.name = name
        self.total_steps = sum(p.n_steps for p in phases)
        self.handles = HandleLedger(name, sim)
        self._ready: Dict[Any, set] = {}
        self._finished: Dict[Any, int] = {}
        #: Chunks that arrived before the receiver entered the round.
        self._stalled: Dict[tuple, list] = {}
        for worker in workers:
            worker_self = worker
            VectorReceiver(
                worker.host,
                lambda src, tag, vec, meta, w=worker_self: self._on_message(
                    w, tag
                ),
                port=port,
            )

    # ------------------------------------------------------------------
    def _locate(self, step: int) -> tuple:
        """Map a global step index to (phase, phase-local step)."""
        for phase in self.phases:
            if step < phase.n_steps:
                return phase, step
            step -= phase.n_steps
        raise IndexError(f"step {step} beyond {self.total_steps}")

    def peer_of(self, worker_index: int, step: int) -> int:
        phase, local = self._locate(step)
        return phase.peer_of(worker_index, local)

    def bytes_of(self, step: int) -> int:
        phase, local = self._locate(step)
        return phase.bytes_of(local)

    # ------------------------------------------------------------------
    def start(self, worker, tag: Any) -> None:
        """Enter ``worker`` into round ``tag`` and send its first chunk."""
        self._ready.setdefault(tag, set()).add(worker.index)
        self.handles.get(tag, expected=len(self.workers)).mark_started(
            worker.name
        )
        self._send_step(worker, tag, step=0)
        for step in self._stalled.pop((tag, worker.index), []):
            self._process(worker, tag, step)

    def _send_step(self, worker, tag: Any, step: int) -> None:
        if step >= self.total_steps:
            return
        peer = self.workers[self.peer_of(worker.index, step)]
        send_vector(
            worker.host,
            peer.name,
            tag=(tag, step),
            vector=None,  # partial sums are timing-only; math happens at the end
            wire_bytes=self.bytes_of(step),
            port=self.port,
            max_chunks=self.max_chunks,
        )

    def _on_message(self, worker, tag_step: tuple) -> None:
        tag, step = tag_step
        if worker.index not in self._ready.get(tag, ()):
            # Fast peer: the chunk waits until this worker's own
            # contribution exists to be folded in.
            self._stalled.setdefault((tag, worker.index), []).append(step)
            return
        self._process(worker, tag, step)

    def _process(self, worker, tag: Any, step: int) -> None:
        # Per-step reduction cost on the receiving host, then forward the
        # next step (or finish after the final step).
        def reduced() -> None:
            if step + 1 < self.total_steps:
                self._send_step(worker, tag, step + 1)
            else:
                self._finish(worker, tag)

        self.sim.schedule(self.step_cost(self.bytes_of(step)), reduced)

    def _finish(self, worker, tag: Any) -> None:
        done = self._finished.get(tag, 0) + 1
        if done >= len(self.workers):
            self._finished.pop(tag, None)
            self._ready.pop(tag, None)
        else:
            self._finished[tag] = done
        self.handles.complete(tag, worker.name)
        self.on_complete(worker, tag)


# ----------------------------------------------------------------------
# Ring schedules (Figure 1b)
# ----------------------------------------------------------------------
def ring_reduce_scatter(
    n_workers: int, chunk_bytes: int, message_count: int = 1
) -> RingSchedule:
    """(N−1)·message_count steps of ``chunk_bytes`` to the next neighbour."""
    if n_workers < 2:
        raise ValueError("ring collectives need at least 2 workers")
    return RingSchedule(
        (n_workers - 1) * message_count,
        lambda i, s: (i + 1) % n_workers,
        lambda s: chunk_bytes,
        label="reduce_scatter",
    )


def ring_all_gather(
    n_workers: int, chunk_bytes: int, message_count: int = 1
) -> RingSchedule:
    """(N−1)·message_count steps circulating the reduced chunks."""
    if n_workers < 2:
        raise ValueError("ring collectives need at least 2 workers")
    return RingSchedule(
        (n_workers - 1) * message_count,
        lambda i, s: (i + 1) % n_workers,
        lambda s: chunk_bytes,
        label="all_gather",
    )


# ----------------------------------------------------------------------
# Hypercube schedules (recursive halving / doubling)
# ----------------------------------------------------------------------
def _log2_exact(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(
            f"halving/doubling needs a power-of-two worker count, got {n}"
        )
    return n.bit_length() - 1


def hd_reduce_scatter(
    n_workers: int, wire_bytes: int, message_count: int = 1
) -> RingSchedule:
    """log2(N)·message_count halving steps: step k pairs ``i`` with
    ``i XOR 2^k`` and moves half the previous step's bytes."""
    levels = _log2_exact(n_workers)
    per_tensor = max(1, wire_bytes // message_count)
    return RingSchedule(
        levels * message_count,
        lambda i, s: i ^ (1 << (s % levels)),
        lambda s: max(1, per_tensor >> ((s % levels) + 1)),
        label="hd_reduce_scatter",
    )


def hd_all_gather(
    n_workers: int, wire_bytes: int, message_count: int = 1
) -> RingSchedule:
    """log2(N)·message_count doubling steps mirroring the halving phase."""
    levels = _log2_exact(n_workers)
    per_tensor = max(1, wire_bytes // message_count)
    return RingSchedule(
        levels * message_count,
        lambda i, s: i ^ (1 << (levels - 1 - (s % levels))),
        lambda s: max(1, per_tensor >> (levels - (s % levels))),
        label="hd_all_gather",
    )

"""Shared round bookkeeping for collective primitives.

Every primitive tracks its in-flight rounds with a
:class:`CollectiveHandle`: when a participant starts contributing the
handle records the simulated time, and when the collective completes for
that participant it records the completion time and emits a
``collective.<name>`` telemetry span on the participant's track.  The
handle never schedules events of its own, so attaching one to a data
path cannot perturb simulated timing.

:class:`RoundBarrier` is the completion-tracking half: it counts
arrivals per round tag and fires a callback exactly once when a
threshold is reached — the pattern every strategy used to hand-roll
(`_pending`, `_finished`, per-shard counters, ...).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

__all__ = ["CollectiveHandle", "RoundBarrier"]

#: Retain at most this many finished/stale handles per primitive before
#: evicting the oldest (async strategies create one round per commit).
MAX_LIVE_HANDLES = 256


class CollectiveHandle:
    """Timing record for one collective round (one ``tag``).

    ``started``/``completed`` map participant names (host names) to
    simulated times.  ``expected`` counts how many completions the round
    needs before it is considered fully done; primitives that fan out
    incrementally (e.g. :meth:`PsScatter.send_to`) grow it per send.
    """

    __slots__ = ("name", "tag", "sim", "expected", "started", "completed")

    def __init__(self, name: str, tag: Any, sim, expected: int = 0) -> None:
        self.name = name
        self.tag = tag
        self.sim = sim
        self.expected = expected
        self.started: Dict[str, float] = {}
        self.completed: Dict[str, float] = {}

    def mark_started(self, participant: str) -> None:
        self.started.setdefault(participant, self.sim.now)

    def mark_completed(self, participant: str) -> None:
        now = self.sim.now
        self.completed[participant] = now
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            start = self.started.get(participant, now)
            telemetry.span_at(
                f"collective.{self.name}",
                start,
                now,
                cat="collective",
                track=participant,
                tag=self.tag,
            )

    @property
    def done(self) -> bool:
        """All expected completions observed."""
        return self.expected > 0 and len(self.completed) >= self.expected

    def elapsed(self, participant: str) -> Optional[float]:
        """Start-to-completion duration for one participant, if finished."""
        start = self.started.get(participant)
        end = self.completed.get(participant)
        return None if start is None or end is None else end - start

    @property
    def completed_at(self) -> Optional[float]:
        """Simulated time the last completion so far was recorded."""
        return max(self.completed.values()) if self.completed else None


class HandleLedger:
    """Per-primitive handle store with bounded retention."""

    def __init__(self, name: str, sim) -> None:
        self.name = name
        self.sim = sim
        self._handles: Dict[Any, CollectiveHandle] = {}

    def get(self, tag: Any, expected: int = 0) -> CollectiveHandle:
        handle = self._handles.get(tag)
        if handle is None:
            handle = CollectiveHandle(self.name, tag, self.sim, expected)
            self._handles[tag] = handle
            if len(self._handles) > MAX_LIVE_HANDLES:
                # Insertion order == creation order; drop the oldest half.
                for old in list(self._handles)[: MAX_LIVE_HANDLES // 2]:
                    del self._handles[old]
        return handle

    def complete(self, tag: Any, participant: str) -> None:
        """Record a completion; forget the handle once the round is done."""
        handle = self._handles.get(tag)
        if handle is None:
            return
        handle.mark_completed(participant)
        if handle.done:
            del self._handles[tag]

    def peek(self, tag: Any) -> Optional[CollectiveHandle]:
        return self._handles.get(tag)

    def __len__(self) -> int:
        return len(self._handles)


class RoundBarrier:
    """Count arrivals per tag; fire ``on_complete(tag)`` at ``threshold``."""

    def __init__(
        self, threshold: int, on_complete: Optional[Callable[[Any], None]] = None
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.on_complete = on_complete
        self._arrived: Dict[Any, int] = {}

    def arrive(self, tag: Any) -> bool:
        """Record one arrival; returns True when this one completed the tag."""
        count = self._arrived.get(tag, 0) + 1
        if count < self.threshold:
            self._arrived[tag] = count
            return False
        self._arrived.pop(tag, None)
        if self.on_complete is not None:
            self.on_complete(tag)
        return True

    def pending(self, tag: Any) -> int:
        """Arrivals recorded so far for an incomplete tag."""
        return self._arrived.get(tag, 0)

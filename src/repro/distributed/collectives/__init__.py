"""Composable, strategy-agnostic collective primitives over the netsim engine.

The paper's comparison is ultimately about *data paths*: a parameter
server moves every gradient over one host's link and CPU (4 network
hops), a ring pipelines 2(N−1) neighbour exchanges (4N−4 hops), and the
in-switch accelerator aggregates in flight (2 hops).  This package
factors those data paths out of the training strategies into reusable
collective primitives, the way SwitchML/NetReduce treat in-network
aggregation as one collective among several interchangeable ones:

* :class:`PsGather` / :class:`PsScatter` — hub-based push/pull over a
  single host: sequential host-CPU ingest through a
  :class:`~repro.distributed.metrics.BusyQueue`, single-link fan-out.
* :class:`RingExchange` with :func:`ring_reduce_scatter` /
  :func:`ring_all_gather` schedules — chained per-step chunk moves
  between schedule-defined peers, paying per-step framework overhead.
  The same machinery runs hypercube schedules
  (:func:`hd_reduce_scatter` / :func:`hd_all_gather`) for
  recursive-halving/doubling allreduce.
* :class:`ISwitchStream` — ToS-tagged segment streaming through the
  in-switch aggregation fabric via
  :class:`~repro.core.client.AggregationClient`.
* :class:`CollectiveHandle` / :class:`RoundBarrier` — shared round
  bookkeeping: per-participant start/completion times and telemetry
  spans (``collective.<name>``), and threshold-triggered completion.

Strategies compose these primitives; the primitives never touch
training state (weights, optimizers), only movement and timing.
"""

from .base import CollectiveHandle, RoundBarrier
from .iswitch import ISwitchStream, iswitch_stream, make_plan
from .ps import PsGather, PsScatter, ps_gather, ps_scatter
from .ring import (
    RingExchange,
    RingSchedule,
    hd_all_gather,
    hd_reduce_scatter,
    ring_all_gather,
    ring_reduce_scatter,
)

__all__ = [
    "CollectiveHandle",
    "RoundBarrier",
    "PsGather",
    "PsScatter",
    "ps_gather",
    "ps_scatter",
    "RingExchange",
    "RingSchedule",
    "ring_reduce_scatter",
    "ring_all_gather",
    "hd_reduce_scatter",
    "hd_all_gather",
    "ISwitchStream",
    "iswitch_stream",
    "make_plan",
]

"""The experiment-configuration facade: one object describes one run.

:class:`ExperimentConfig` consolidates the keyword sprawl of
``run_sync``/``run_async`` into a single validated dataclass, consumed by
:func:`repro.distributed.run`::

    from repro.distributed import ExperimentConfig, run

    result = run(ExperimentConfig(strategy="isw", workload="dqn",
                                  n_workers=8, loss_rate=1e-4))

Fields mirror the paper's experiment knobs; anything unset takes the same
default the old entry points used, so ``run(ExperimentConfig(...))`` and
the legacy ``run_sync(...)`` produce bit-identical results for the same
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile, get_profile

__all__ = ["ExperimentConfig", "DEFAULT_RECOVERY_TIMEOUT", "resolve_codec"]

#: Worker watchdog period when loss recovery is armed and no explicit
#: ``recovery_timeout`` was given: comfortably above one aggregation
#: round-trip at 10 Gb/s, far below an iteration.
DEFAULT_RECOVERY_TIMEOUT = 0.5e-3

_WORKLOADS = ("dqn", "a2c", "ppo", "ddpg", "synth")
_BACKENDS = ("sim", "live")
_TRANSPORTS = ("packet", "train")
_SCHEDULERS = ("heap", "calendar")


@dataclass
class ExperimentConfig:
    """Everything needed to run one distributed-training experiment."""

    strategy: str = "isw"
    workload: str = "dqn"
    mode: str = "sync"
    #: Execution backend: ``"sim"`` (the discrete-event simulator) or
    #: ``"live"`` (worker/switch processes exchanging encoded frames over
    #: loopback UDP; see :mod:`repro.live`).
    backend: str = "sim"
    #: Sum contributions in canonical (rank) order instead of arrival
    #: order.  float32 addition is order-sensitive; the live backend is
    #: always canonical, so set this on a sim run to make the two
    #: bit-comparable.  Off by default — the golden regressions pin the
    #: paper's on-the-fly arrival-order numerics.
    deterministic_aggregation: bool = False
    n_workers: int = 4
    #: Iterations (sync) or weight updates (async) to simulate.
    iterations: int = 50
    seed: int = 0
    #: Training-job id for multi-tenant switches (0 = the default job).
    #: Only iSwitch strategies consume it; the wire protocol carries it in
    #: 7 reserved bits, hence the 0..127 range.
    job_id: int = 0
    #: Async only: the staleness bound S of Algorithm 1.
    staleness_bound: int = 3
    #: Aggregation numerics / wire codec (see
    #: :mod:`repro.core.compression`): ``"fp32"`` (the paper's datapath,
    #: default), ``"fp16"``, ``"int32-bs"`` (block-scaled int32, summed
    #: as integers on the switch), ``"topk"`` (sparsified index+value
    #: frames), or ``"int8"`` (simulator-only loss model, no wire
    #: format).  Non-fp32 codecs require an iSwitch strategy — they model
    #: what the switch dataplane aggregates.
    codec: str = "fp32"
    #: Independent per-packet drop probability on every host link.
    #: Only iSwitch strategies are loss-tolerant; ``run`` rejects
    #: ``loss_rate > 0`` for ps/ar.
    loss_rate: float = 0.0
    #: Worker watchdog period for loss recovery; ``None`` picks
    #: :data:`DEFAULT_RECOVERY_TIMEOUT` when ``loss_rate > 0``.
    recovery_timeout: Optional[float] = None
    profile: Optional[WorkloadProfile] = None
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    algorithm_overrides: Optional[dict] = None
    workers_per_rack: int = 4
    #: ``ps-shard`` only: number of shard servers (clamped to the worker
    #: count); ``None`` uses the strategy's default.
    ps_shards: Optional[int] = None
    #: Simulated transport granularity: ``"packet"`` schedules one event
    #: per packet (the reference model; the golden regressions pin it),
    #: ``"train"`` coalesces same-destination bursts into
    #: :class:`~repro.netsim.packets.PacketTrain` deliveries — one
    #: vectorized timeline computation and one event per train, for the
    #: same per-packet arrival times.  Sim backend only.
    transport: str = "packet"
    #: Event-queue backend: ``"heap"`` (reference binary heap) or
    #: ``"calendar"`` (bucketed calendar queue); dispatch order is
    #: identical, only the queue's cost profile differs.
    scheduler: str = "heap"
    #: Collect metrics/spans/events into ``TrainingResult.telemetry``.
    telemetry: bool = True
    #: Scenario-driven fault injection: a
    #: :class:`repro.faults.FaultPlan` instance, or a path (``str``) to a
    #: plan JSON file (see ``repro train --fault-plan``).  ``None``
    #: disables injection.
    fault_plan: Optional[object] = None

    def __post_init__(self) -> None:
        self.strategy = self.strategy.lower()
        self.mode = self.mode.lower()
        self.workload = self.workload.lower()
        self.backend = self.backend.lower()
        # Accept mode-qualified strategy names ("sync-isw", "async-ps"):
        # the prefix sets the mode, matching how results and docs label
        # strategies.
        for prefix in ("sync", "async"):
            if self.strategy.startswith(prefix + "-"):
                self.strategy = self.strategy[len(prefix) + 1 :]
                self.mode = prefix
                break
        if self.mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {self.mode!r}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.workload not in _WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose {_WORKLOADS}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0 <= self.job_id <= 127:
            raise ValueError(
                f"job_id must be in [0, 127] (7 wire bits), got {self.job_id}"
            )
        if self.staleness_bound < 0:
            raise ValueError(
                f"staleness_bound must be >= 0, got {self.staleness_bound}"
            )
        self.codec = self.codec.lower()
        from ..core.compression import CODECS

        if self.codec not in CODECS:
            raise ValueError(
                f"unknown codec {self.codec!r}; choose one of "
                f"{sorted(CODECS)}"
            )
        self.transport = self.transport.lower()
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {self.transport!r}"
            )
        self.scheduler = self.scheduler.lower()
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.recovery_timeout is not None and self.recovery_timeout <= 0:
            raise ValueError(
                f"recovery_timeout must be > 0, got {self.recovery_timeout}"
            )
        if self.workers_per_rack < 1:
            raise ValueError(
                f"workers_per_rack must be >= 1, got {self.workers_per_rack}"
            )
        if self.ps_shards is not None and self.ps_shards < 1:
            raise ValueError(
                f"ps_shards must be >= 1, got {self.ps_shards}"
            )

    # ------------------------------------------------------------------
    def resolved_profile(self) -> WorkloadProfile:
        return self.profile if self.profile is not None else get_profile(
            self.workload
        )

    def resolved_recovery_timeout(self) -> Optional[float]:
        """The watchdog period to arm, or ``None`` for no recovery loop.

        Armed automatically whenever packets can go missing: explicit
        ``loss_rate`` *or* a fault plan (which may inject burst loss or
        a switch Reset mid-round).
        """
        if self.recovery_timeout is not None:
            return self.recovery_timeout
        if self.loss_rate > 0 or self.fault_plan is not None:
            return DEFAULT_RECOVERY_TIMEOUT
        return None

    def resolved_fault_plan(self):
        """The :class:`repro.faults.FaultPlan` to inject, or ``None``.

        Accepts a plan instance or a JSON path string (loaded lazily so
        configs without faults never import :mod:`repro.faults`).
        """
        if self.fault_plan is None:
            return None
        from ..faults.plan import FaultPlan

        if isinstance(self.fault_plan, FaultPlan):
            return self.fault_plan
        if isinstance(self.fault_plan, str):
            return FaultPlan.load(self.fault_plan)
        raise ValueError(
            "fault_plan must be a FaultPlan or a path to a plan JSON, "
            f"got {type(self.fault_plan).__name__}"
        )

    def resolved_codec(self):
        """The :class:`~repro.core.compression.GradientCodec` instance, or
        ``None`` for the fp32 datapath (which runs the exact pre-codec
        engine and plan geometry)."""
        if self.codec == "fp32":
            return None
        from ..core.compression import get_codec

        return get_codec(self.codec)

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)


def resolve_codec(config) -> Optional[object]:
    """Duck-typed :meth:`ExperimentConfig.resolved_codec` for strategy
    ``create()`` hooks, which also accept plain config stand-ins."""
    resolved = getattr(config, "resolved_codec", None)
    return resolved() if callable(resolved) else None

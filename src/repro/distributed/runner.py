"""High-level entry points: build a cluster and run a training experiment.

The primary API is one config object plus one function:

>>> from repro.distributed import ExperimentConfig, run
>>> result = run(ExperimentConfig(strategy="isw", workload="dqn"))
>>> result.per_iteration_time   # doctest: +SKIP
>>> result.telemetry.value("link.tx_packets")   # doctest: +SKIP

``run_sync``/``run_async`` remain as thin keyword wrappers; both are
**deprecated** — they emit a :class:`DeprecationWarning` and route through
``run(ExperimentConfig(...))``, producing bit-identical results for the
same arguments (pinned by the regression tests).

Strategy names follow the paper's abbreviations: ``ps``, ``ar``, ``isw``
(synchronous, plus the ``ar-hd`` halving/doubling and ``ps-shard``
sharded-PS extensions) and ``ps``, ``isw`` (asynchronous); they are
looked up in the :mod:`repro.distributed.registry`, so new strategies
self-register via the ``@register_strategy`` decorator.  Worker counts above
``workers_per_rack`` automatically use the two-layer rack-scale topology
of Figure 10 with hierarchical aggregation.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..core.hierarchy import (
    dedup_iswitch_factory,
    iswitch_factory,
    make_iswitch_factory,
)
from ..netsim.events import Simulator, make_simulator
from ..netsim.topology import build_rack_tree, build_star
from ..rl.a2c import A2C
from ..rl.base import Algorithm
from ..rl.ddpg import DDPG
from ..rl.dqn import DQN
from ..rl.envs import Cheetah1D, GridPong, GridQbert, Hopper1D
from ..rl.ppo import PPO
from ..rl.synthetic import SyntheticAlgorithm
from ..telemetry.hub import TelemetryHub
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile, get_profile
from .asynchronous import AsyncISwitch, AsyncParameterServer  # noqa: F401
from .config import ExperimentConfig
from .registry import get_strategy, strategy_names
from .results import TrainingResult
from .sharded import ShardedParameterServer  # noqa: F401
from .sync import (  # noqa: F401
    HalvingDoublingAllReduce,
    RingAllReduce,
    SyncISwitch,
    SyncParameterServer,
)
from .worker import ComputeModel, SimWorker

__all__ = [
    "make_algorithm",
    "build_cluster",
    "run",
    "run_sync",
    "run_async",
    "SYNC_STRATEGIES",
    "ASYNC_STRATEGIES",
]

# Importing the strategy modules above populated the registry; the
# public tuples are derived from it (registration order == declaration
# order, matching the historical hard-coded values).
SYNC_STRATEGIES = strategy_names("sync")
ASYNC_STRATEGIES = strategy_names("async")

#: Default initialization seed shared by all replicas of a run.
INIT_SEED = 12345


def make_algorithm(
    workload: str, seed: int, init_seed: int = INIT_SEED, **overrides
) -> Algorithm:
    """Instantiate the paper workload's algorithm on its stand-in env.

    ``seed`` drives exploration/environment randomness (unique per
    worker); ``init_seed`` drives weight init (shared by all replicas).
    """
    name = workload.lower()
    if name == "dqn":
        return DQN(GridPong(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "a2c":
        return A2C(GridQbert(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "ppo":
        return PPO(Hopper1D(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "ddpg":
        return DDPG(
            Cheetah1D(seed=seed), seed=seed, init_seed=init_seed, **overrides
        )
    if name == "synth":
        # The benchmark harness's simulator-bound workload: near-zero
        # LGC cost so wall-clock timings measure the netsim, not NumPy.
        return SyntheticAlgorithm(seed=seed, init_seed=init_seed, **overrides)
    raise KeyError(
        f"unknown workload {workload!r}; choose dqn/a2c/ppo/ddpg/synth"
    )


def build_cluster(
    n_workers: int,
    profile: WorkloadProfile,
    with_server: bool,
    use_iswitch: bool,
    workers_per_rack: int = 4,
    seed: int = 0,
    workload: Optional[str] = None,
    algorithm_overrides: Optional[dict] = None,
    loss_rate: float = 0.0,
    dedup: bool = False,
    telemetry: Optional[TelemetryHub] = None,
    canonical: bool = False,
    transport: str = "packet",
    scheduler: str = "heap",
    codec=None,
) -> tuple:
    """Build (network, workers) for one experiment.

    Up to ``workers_per_rack`` workers fit a single switch; beyond that
    the Figure 10 two-layer tree is used (three workers per rack, like
    the paper's NetFPGA-port-limited emulation).  ``loss_rate`` applies
    independent per-packet drops on every link (seeded reproducibly from
    ``seed``); ``dedup`` enables duplicate suppression in the iSwitch
    engines, which loss recovery requires.  ``telemetry`` attaches a
    :class:`~repro.telemetry.TelemetryHub` to the simulator so the hot
    paths record metrics and spans.
    """
    sim = make_simulator(scheduler, telemetry=telemetry)
    sim.batch_transport = transport == "train"
    if use_iswitch:
        if canonical or codec is not None:
            factory = make_iswitch_factory(
                dedup=dedup, canonical=canonical, codec=codec
            )
        else:
            factory = dedup_iswitch_factory if dedup else iswitch_factory
        kwargs = {"switch_factory": factory}
    else:
        kwargs = {}
    if loss_rate > 0:
        kwargs["loss_rate"] = loss_rate
        kwargs["loss_seed"] = seed
    if n_workers <= workers_per_rack:
        net = build_star(sim, n_workers, with_server=with_server, **kwargs)
    else:
        net = build_rack_tree(
            sim, n_workers, workers_per_rack=3, with_server=with_server, **kwargs
        )
    workload = workload or profile.name
    overrides = algorithm_overrides or {}
    workers = []
    for index, host in enumerate(net.workers):
        algorithm = make_algorithm(workload, seed=seed + index, **overrides)
        compute = ComputeModel(profile, seed=seed * 1000 + index)
        workers.append(SimWorker(index, host, algorithm, compute))
    return net, workers


def _register_network_collectors(hub: TelemetryHub, net) -> None:
    """Scrape cumulative component state into the registry at snapshot
    time, so baseline series (tx/drop counters per link, engine stats per
    switch) are always present — even when their live value never moved."""

    def collect(h: TelemetryHub) -> None:
        for link in net.links:
            dropped = h.metrics.counter("link.packets_dropped", link=link.name)
            missing = link.dropped_packets - dropped.value
            if missing > 0:
                # Drops that happened while no hub was attached (or before
                # instrumentation armed) still show up in the snapshot.
                dropped.inc(missing)
            for end in link.ends:
                owner = end.device.name if end.device is not None else "?"
                h.metrics.gauge(
                    "link.utilization", link=link.name, device=owner
                ).set(end.utilization(h.now()))
        for switch in net.switches:
            engine = getattr(switch, "engine", None)
            if engine is None:
                continue
            stats = engine.stats
            for field_name in ("duplicates_dropped", "evictions"):
                counter = h.metrics.counter(
                    f"switch.{field_name}", switch=switch.name
                )
                missing = getattr(stats, field_name) - counter.value
                if missing > 0:
                    counter.inc(missing)

    hub.add_collector(collect)


def run(config: ExperimentConfig) -> TrainingResult:
    """Run one experiment described by ``config``; the single entry point.

    Raises ``KeyError`` for unknown strategies (listing valid ones) and
    ``ValueError`` for configurations the strategy cannot honour (e.g.
    packet loss with a strategy that has no loss recovery).
    """
    if config.backend == "live":
        from ..live.runner import run_live

        return run_live(config)
    spec = get_strategy(config.mode, config.strategy)
    if config.loss_rate > 0 and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} has no loss recovery; "
            "loss_rate > 0 requires an iSwitch strategy ('isw')"
        )
    if config.job_id and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} has no per-job switch state; "
            "job_id > 0 requires an iSwitch strategy ('isw')"
        )
    if config.codec != "fp32" and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} aggregates on hosts in fp32; "
            "codec != 'fp32' models the switch dataplane and requires an "
            "iSwitch strategy ('isw')"
        )
    # fp32 stays codec=None end-to-end: the engines, plans and goldens
    # run the exact pre-codec datapath.
    codec = None
    if config.codec != "fp32":
        from ..core.compression import get_codec

        codec = get_codec(config.codec)
    profile = config.resolved_profile()
    plan = config.resolved_fault_plan()
    hub = TelemetryHub() if config.telemetry else None
    net, workers = build_cluster(
        config.n_workers,
        profile,
        with_server=spec.requires_server,
        use_iswitch=spec.requires_iswitch,
        workers_per_rack=config.workers_per_rack,
        seed=config.seed,
        workload=config.workload,
        algorithm_overrides=config.algorithm_overrides,
        loss_rate=config.loss_rate,
        dedup=spec.requires_iswitch and (config.loss_rate > 0 or plan is not None),
        telemetry=hub,
        canonical=config.deterministic_aggregation and spec.requires_iswitch,
        transport=config.transport,
        scheduler=config.scheduler,
        codec=codec,
    )
    runner = spec.cls.create(net, workers, profile, config)
    injector = None
    if plan is not None:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(
            net,
            workers,
            runner,
            plan,
            loss_tolerant=spec.requires_iswitch,
            poll_interval=profile.compute_time / 2,
        )
        injector.install()
    result = runner.run(config.iterations)
    if injector is not None:
        injector.finalize(result)
    if hub is not None:
        _register_network_collectors(hub, net)
        result.telemetry = hub.snapshot(
            meta={
                "strategy": result.strategy,
                "workload": config.workload,
                "mode": config.mode,
                "n_workers": config.n_workers,
                "iterations": config.iterations,
                "seed": config.seed,
                "loss_rate": config.loss_rate,
                "codec": config.codec,
            }
        )
    return result


def run_sync(
    strategy: str,
    workload: str,
    n_workers: int = 4,
    n_iterations: int = 50,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    profile: Optional[WorkloadProfile] = None,
    algorithm_overrides: Optional[dict] = None,
    loss_rate: float = 0.0,
    recovery_timeout: Optional[float] = None,
    telemetry: bool = False,
) -> TrainingResult:
    """Run synchronous distributed training with ``strategy`` ps|ar|isw.

    .. deprecated::
        Build an :class:`ExperimentConfig` and call :func:`run` instead;
        results are bit-identical for the same arguments.  Telemetry
        defaults *off* here so benchmark timings are unaffected.
    """
    warnings.warn(
        "run_sync() is deprecated; use run(ExperimentConfig(mode='sync', "
        "..., telemetry=False)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    strategy = strategy.lower()
    if strategy not in SYNC_STRATEGIES:
        raise KeyError(f"unknown sync strategy {strategy!r}; choose {SYNC_STRATEGIES}")
    return run(
        ExperimentConfig(
            strategy=strategy,
            workload=workload,
            mode="sync",
            n_workers=n_workers,
            iterations=n_iterations,
            seed=seed,
            cost_model=cost_model,
            profile=profile,
            algorithm_overrides=algorithm_overrides,
            loss_rate=loss_rate,
            recovery_timeout=recovery_timeout,
            telemetry=telemetry,
        )
    )


def run_async(
    strategy: str,
    workload: str,
    n_workers: int = 4,
    n_updates: int = 100,
    seed: int = 0,
    staleness_bound: int = 3,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    profile: Optional[WorkloadProfile] = None,
    algorithm_overrides: Optional[dict] = None,
    loss_rate: float = 0.0,
    recovery_timeout: Optional[float] = None,
    telemetry: bool = False,
) -> TrainingResult:
    """Run asynchronous distributed training with ``strategy`` ps|isw.

    .. deprecated::
        Build an :class:`ExperimentConfig` and call :func:`run` instead;
        results are bit-identical for the same arguments.
    """
    warnings.warn(
        "run_async() is deprecated; use run(ExperimentConfig(mode='async', "
        "..., telemetry=False)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    strategy = strategy.lower()
    if strategy not in ASYNC_STRATEGIES:
        raise KeyError(
            f"unknown async strategy {strategy!r}; choose {ASYNC_STRATEGIES}"
        )
    return run(
        ExperimentConfig(
            strategy=strategy,
            workload=workload,
            mode="async",
            n_workers=n_workers,
            iterations=n_updates,
            seed=seed,
            staleness_bound=staleness_bound,
            cost_model=cost_model,
            profile=profile,
            algorithm_overrides=algorithm_overrides,
            loss_rate=loss_rate,
            recovery_timeout=recovery_timeout,
            telemetry=telemetry,
        )
    )

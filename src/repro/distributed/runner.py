"""High-level entry points: build a cluster and run a training experiment.

This is the API the examples and the benchmark harness use:

>>> from repro.distributed import run_sync
>>> result = run_sync("isw", "dqn", n_workers=4, n_iterations=50)
>>> result.per_iteration_time   # doctest: +SKIP

Strategy names follow the paper's abbreviations: ``ps``, ``ar``, ``isw``
(synchronous) and ``ps``, ``isw`` (asynchronous).  Worker counts above
``workers_per_rack`` automatically use the two-layer rack-scale topology
of Figure 10 with hierarchical aggregation.
"""

from __future__ import annotations

from typing import Optional

from ..core.hierarchy import iswitch_factory
from ..netsim.events import Simulator
from ..netsim.topology import build_rack_tree, build_star
from ..rl.a2c import A2C
from ..rl.base import Algorithm
from ..rl.ddpg import DDPG
from ..rl.dqn import DQN
from ..rl.envs import Cheetah1D, GridPong, GridQbert, Hopper1D
from ..rl.ppo import PPO
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile, get_profile
from .asynchronous import AsyncISwitch, AsyncParameterServer
from .results import TrainingResult
from .sync import RingAllReduce, SyncISwitch, SyncParameterServer
from .worker import ComputeModel, SimWorker

__all__ = [
    "make_algorithm",
    "build_cluster",
    "run_sync",
    "run_async",
    "SYNC_STRATEGIES",
    "ASYNC_STRATEGIES",
]

SYNC_STRATEGIES = ("ps", "ar", "isw")
ASYNC_STRATEGIES = ("ps", "isw")

#: Default initialization seed shared by all replicas of a run.
INIT_SEED = 12345


def make_algorithm(
    workload: str, seed: int, init_seed: int = INIT_SEED, **overrides
) -> Algorithm:
    """Instantiate the paper workload's algorithm on its stand-in env.

    ``seed`` drives exploration/environment randomness (unique per
    worker); ``init_seed`` drives weight init (shared by all replicas).
    """
    name = workload.lower()
    if name == "dqn":
        return DQN(GridPong(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "a2c":
        return A2C(GridQbert(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "ppo":
        return PPO(Hopper1D(seed=seed), seed=seed, init_seed=init_seed, **overrides)
    if name == "ddpg":
        return DDPG(
            Cheetah1D(seed=seed), seed=seed, init_seed=init_seed, **overrides
        )
    raise KeyError(f"unknown workload {workload!r}; choose dqn/a2c/ppo/ddpg")


def build_cluster(
    n_workers: int,
    profile: WorkloadProfile,
    with_server: bool,
    use_iswitch: bool,
    workers_per_rack: int = 4,
    seed: int = 0,
    workload: Optional[str] = None,
    algorithm_overrides: Optional[dict] = None,
) -> tuple:
    """Build (network, workers) for one experiment.

    Up to ``workers_per_rack`` workers fit a single switch; beyond that
    the Figure 10 two-layer tree is used (three workers per rack, like
    the paper's NetFPGA-port-limited emulation).
    """
    sim = Simulator()
    factory = iswitch_factory if use_iswitch else None
    kwargs = {"switch_factory": factory} if factory else {}
    if n_workers <= workers_per_rack:
        net = build_star(sim, n_workers, with_server=with_server, **kwargs)
    else:
        net = build_rack_tree(
            sim, n_workers, workers_per_rack=3, with_server=with_server, **kwargs
        )
    workload = workload or profile.name
    overrides = algorithm_overrides or {}
    workers = []
    for index, host in enumerate(net.workers):
        algorithm = make_algorithm(workload, seed=seed + index, **overrides)
        compute = ComputeModel(profile, seed=seed * 1000 + index)
        workers.append(SimWorker(index, host, algorithm, compute))
    return net, workers


def run_sync(
    strategy: str,
    workload: str,
    n_workers: int = 4,
    n_iterations: int = 50,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    profile: Optional[WorkloadProfile] = None,
    algorithm_overrides: Optional[dict] = None,
) -> TrainingResult:
    """Run synchronous distributed training with ``strategy`` ps|ar|isw."""
    strategy = strategy.lower()
    if strategy not in SYNC_STRATEGIES:
        raise KeyError(f"unknown sync strategy {strategy!r}; choose {SYNC_STRATEGIES}")
    profile = profile or get_profile(workload)
    net, workers = build_cluster(
        n_workers,
        profile,
        with_server=strategy == "ps",
        use_iswitch=strategy == "isw",
        seed=seed,
        workload=workload,
        algorithm_overrides=algorithm_overrides,
    )
    cls = {
        "ps": SyncParameterServer,
        "ar": RingAllReduce,
        "isw": SyncISwitch,
    }[strategy]
    return cls(net, workers, profile, cost_model).run(n_iterations)


def run_async(
    strategy: str,
    workload: str,
    n_workers: int = 4,
    n_updates: int = 100,
    seed: int = 0,
    staleness_bound: int = 3,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    profile: Optional[WorkloadProfile] = None,
    algorithm_overrides: Optional[dict] = None,
) -> TrainingResult:
    """Run asynchronous distributed training with ``strategy`` ps|isw."""
    strategy = strategy.lower()
    if strategy not in ASYNC_STRATEGIES:
        raise KeyError(
            f"unknown async strategy {strategy!r}; choose {ASYNC_STRATEGIES}"
        )
    profile = profile or get_profile(workload)
    net, workers = build_cluster(
        n_workers,
        profile,
        with_server=strategy == "ps",
        use_iswitch=strategy == "isw",
        seed=seed,
        workload=workload,
        algorithm_overrides=algorithm_overrides,
    )
    if strategy == "ps":
        server_algorithm = make_algorithm(
            workload, seed=seed + 10_000, **(algorithm_overrides or {})
        )
        runner = AsyncParameterServer(
            net,
            workers,
            profile,
            server_algorithm,
            cost_model,
            staleness_bound=staleness_bound,
        )
    else:
        runner = AsyncISwitch(
            net, workers, profile, cost_model, staleness_bound=staleness_bound
        )
    return runner.run(n_updates)

"""Decorator-based strategy registry.

Strategy classes self-register at import time::

    @register_strategy("sync", "isw", requires_iswitch=True)
    class SyncISwitch(SyncStrategy):
        ...

``run_sync``/``run_async``/:func:`repro.distributed.run` look strategies
up here instead of in hard-coded dicts, so adding a strategy is one
decorator — no runner edits.  Each spec records what the strategy needs
from the topology builder (a parameter-server host, iSwitch fabric) and
exposes the class's ``create(net, workers, profile, config)`` factory.

Registration order is preserved: ``strategy_names("sync")`` returns the
names in the order the classes were declared, which keeps error messages
and CLI help stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

__all__ = [
    "StrategySpec",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "strategy_specs",
    "unregister_strategy",
    "MODES",
]

MODES = ("sync", "async")


@dataclass(frozen=True)
class StrategySpec:
    """One registered strategy: its class plus topology requirements."""

    mode: str
    name: str
    cls: Type
    #: Topology must include a parameter-server host.
    requires_server: bool = False
    #: Topology must be built with iSwitch fabric (and the strategy is
    #: loss-tolerant: it can recover from dropped packets).
    requires_iswitch: bool = False
    #: The live UDP backend (:mod:`repro.live`) can execute this strategy
    #: for real over loopback sockets.
    supports_live: bool = False
    #: The multi-tenant fabric (:mod:`repro.multitenant`) can multiplex
    #: many concurrent instances of this strategy over one switch tree.
    supports_multijob: bool = False


_REGISTRY: Dict[Tuple[str, str], StrategySpec] = {}


def register_strategy(
    mode: str,
    name: str,
    *,
    requires_server: bool = False,
    requires_iswitch: bool = False,
    supports_live: bool = False,
    supports_multijob: bool = False,
):
    """Class decorator registering a strategy under ``(mode, name)``.

    The class must provide ``create(cls, net, workers, profile, config)``
    (a classmethod) returning a runner with a ``run(n)`` method.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")

    def decorate(cls):
        key = (mode, name.lower())
        existing = _REGISTRY.get(key)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"strategy {name!r} already registered for mode {mode!r} "
                f"by {existing.cls.__name__}"
            )
        if not callable(getattr(cls, "create", None)):
            raise TypeError(
                f"{cls.__name__} must define a create() classmethod to be "
                "registered as a strategy"
            )
        _REGISTRY[key] = StrategySpec(
            mode=mode,
            name=name.lower(),
            cls=cls,
            requires_server=requires_server,
            requires_iswitch=requires_iswitch,
            supports_live=supports_live,
            supports_multijob=supports_multijob,
        )
        return cls

    return decorate


def get_strategy(mode: str, name: str) -> StrategySpec:
    """Look up a registered strategy; KeyError lists the valid names."""
    spec = _REGISTRY.get((mode, name.lower()))
    if spec is None:
        raise KeyError(
            f"unknown {mode} strategy {name!r}; choose {strategy_names(mode)}"
        )
    return spec


def strategy_names(mode: str) -> tuple:
    """Registered names for ``mode``, in registration order."""
    return tuple(n for (m, n) in _REGISTRY if m == mode)


def strategy_specs(mode: Optional[str] = None) -> tuple:
    """All registered specs (optionally one mode's), in registration order."""
    return tuple(
        spec
        for (m, _), spec in _REGISTRY.items()
        if mode is None or m == mode
    )


def unregister_strategy(mode: str, name: str) -> None:
    """Remove a registration (primarily for tests adding throwaway ones)."""
    _REGISTRY.pop((mode, name.lower()), None)

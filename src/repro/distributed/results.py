"""Result records returned by the training strategies.

:class:`TrainingResult` carries typed optional fields for everything the
strategies and backends report (async staleness statistics, live-backend
artifacts such as final weights and round digests).  The historical
``result.extras`` dict remains available as a *deprecated* alias — a
mutable view over the same typed fields — so existing callers keep
working while they migrate.
"""

from __future__ import annotations

import warnings
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..netsim.trace import LatencyStats
from ..telemetry.hub import TelemetrySnapshot
from .metrics import IterationBreakdown
from .worker import SimWorker

__all__ = ["TrainingResult"]

#: ``extras`` keys that are now typed fields on :class:`TrainingResult`.
_TYPED_EXTRAS = (
    "backend",
    "mean_staleness",
    "max_staleness",
    "server_busy_time",
    "commits",
    "skipped_commits",
    "wall_elapsed",
    "final_weights",
    "round_digests",
    "worker_digests",
    "rewards",
    "worker_counters",
    "server_stats",
)

_EXTRAS_DEPRECATION = (
    "TrainingResult.extras is deprecated; read/write the typed fields "
    "instead (result.mean_staleness, result.final_weights, ...)"
)


class _ExtrasView(MutableMapping):
    """Deprecated dict facade mapping legacy keys onto typed fields.

    Typed keys (``mean_staleness``, ``final_weights``, ...) read and
    write the corresponding :class:`TrainingResult` attribute; a typed
    field whose value is ``None`` is treated as absent, matching the old
    "key not set" semantics.  Unknown keys fall back to a plain dict so
    ad-hoc annotations keep working.
    """

    __slots__ = ("_result",)

    def __init__(self, result: "TrainingResult") -> None:
        self._result = result

    def __getitem__(self, key: str) -> Any:
        if key in _TYPED_EXTRAS:
            value = getattr(self._result, key)
            if value is None:
                raise KeyError(key)
            return value
        return self._result._extra_values[key]

    def __setitem__(self, key: str, value: Any) -> None:
        if key in _TYPED_EXTRAS:
            setattr(self._result, key, value)
        else:
            self._result._extra_values[key] = value

    def __delitem__(self, key: str) -> None:
        if key in _TYPED_EXTRAS:
            if getattr(self._result, key) is None:
                raise KeyError(key)
            setattr(self._result, key, None)
        else:
            del self._result._extra_values[key]

    def __iter__(self) -> Iterator[str]:
        for key in _TYPED_EXTRAS:
            if getattr(self._result, key) is not None:
                yield key
        yield from self._result._extra_values

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ExtrasView({dict(self)!r})"


@dataclass
class TrainingResult:
    """Outcome of one simulated distributed-training run.

    ``per_iteration_time`` follows the paper's definitions (§5.2): for
    synchronous training it is the latency of one training iteration; for
    asynchronous training it is the mean interval between consecutive
    weight updates.
    """

    strategy: str
    workload: str
    n_workers: int
    iterations: int
    elapsed: float
    workers: List[SimWorker] = field(default_factory=list)
    breakdown: IterationBreakdown = field(default_factory=IterationBreakdown)
    aggregation_latency: LatencyStats = field(default_factory=LatencyStats)
    #: Which backend produced this result: ``"sim"`` or ``"live"``.
    backend: str = "sim"
    #: Async strategies: mean/max observed staleness (Algorithm 1's
    #: ``t - ts``) and cumulative PS CPU busy time, ``None`` elsewhere.
    mean_staleness: Optional[float] = None
    max_staleness: Optional[float] = None
    server_busy_time: Optional[float] = None
    #: Async iSwitch: committed vs. staleness-skipped aggregation rounds.
    commits: Optional[int] = None
    skipped_commits: Optional[int] = None
    #: Live backend: end-to-end wall time including process start-up
    #: (``elapsed`` is the slowest worker's training loop alone).
    wall_elapsed: Optional[float] = None
    #: Live backend: per-rank float64 final weights.
    final_weights: Optional[Dict[int, Any]] = None
    #: Live backend: per-round SHA-256 digests of the aggregated sums
    #: (identical across ranks by construction).
    round_digests: Optional[List[str]] = None
    #: Per-rank digest streams for strategies whose workers observe
    #: *different* aggregate trajectories (async-ps pulls post-apply
    #: weights, so each rank sees its own versions); ``None`` when all
    #: ranks share ``round_digests``.
    worker_digests: Optional[Dict[int, List[str]]] = None
    #: Live backend: per-rank final average rewards.
    rewards: Optional[Dict[int, float]] = None
    #: Live backend: per-rank protocol counters.
    worker_counters: Optional[Dict[int, Dict[str, int]]] = None
    #: Live backend: the aggregator process's counters.
    server_stats: Optional[Dict[str, int]] = None
    #: Frozen metrics/spans/events for the run, when the experiment was
    #: configured with ``telemetry=True`` (see :mod:`repro.telemetry`).
    telemetry: Optional[TelemetrySnapshot] = None
    #: Structured outcome of fault injection — a
    #: :class:`repro.faults.FaultReport` — when the experiment was
    #: configured with a ``fault_plan``; ``None`` otherwise.
    fault_report: Optional[Any] = None
    #: Storage for legacy ``extras`` keys with no typed equivalent.
    _extra_values: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def per_iteration_time(self) -> float:
        return self.elapsed / self.iterations if self.iterations else 0.0

    @property
    def final_average_reward(self) -> float:
        rewards = [w.algorithm.final_average_reward() for w in self.workers]
        finite = [r for r in rewards if r != float("-inf")]
        return sum(finite) / len(finite) if finite else float("-inf")

    def projected_hours(self, total_iterations: int) -> float:
        """End-to-end hours if run for ``total_iterations`` at this rate —
        the paper's own methodology (measured per-iteration × iterations)."""
        return self.per_iteration_time * total_iterations / 3600.0

    # ------------------------------------------------------------------
    # Deprecated dict-style access
    # ------------------------------------------------------------------
    def _extras_view(self) -> _ExtrasView:
        """The alias view without a deprecation warning (internal use)."""
        return _ExtrasView(self)

    @property
    def extras(self) -> _ExtrasView:
        """Deprecated: a mutable dict view over the typed fields above."""
        warnings.warn(_EXTRAS_DEPRECATION, DeprecationWarning, stacklevel=2)
        return _ExtrasView(self)

    @extras.setter
    def extras(self, mapping: Dict[str, Any]) -> None:
        warnings.warn(_EXTRAS_DEPRECATION, DeprecationWarning, stacklevel=2)
        view = _ExtrasView(self)
        for key in list(view):
            if key != "backend":  # backend always has a value
                del view[key]
        for key, value in mapping.items():
            view[key] = value

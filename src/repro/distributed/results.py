"""Result records returned by the training strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..netsim.trace import LatencyStats
from ..telemetry.hub import TelemetrySnapshot
from .metrics import IterationBreakdown
from .worker import SimWorker

__all__ = ["TrainingResult"]


@dataclass
class TrainingResult:
    """Outcome of one simulated distributed-training run.

    ``per_iteration_time`` follows the paper's definitions (§5.2): for
    synchronous training it is the latency of one training iteration; for
    asynchronous training it is the mean interval between consecutive
    weight updates.
    """

    strategy: str
    workload: str
    n_workers: int
    iterations: int
    elapsed: float
    workers: List[SimWorker] = field(default_factory=list)
    breakdown: IterationBreakdown = field(default_factory=IterationBreakdown)
    aggregation_latency: LatencyStats = field(default_factory=LatencyStats)
    extras: Dict[str, Any] = field(default_factory=dict)
    #: Frozen metrics/spans/events for the run, when the experiment was
    #: configured with ``telemetry=True`` (see :mod:`repro.telemetry`).
    telemetry: Optional[TelemetrySnapshot] = None
    #: Structured outcome of fault injection — a
    #: :class:`repro.faults.FaultReport` — when the experiment was
    #: configured with a ``fault_plan``; ``None`` otherwise.
    fault_report: Optional[Any] = None

    @property
    def per_iteration_time(self) -> float:
        return self.elapsed / self.iterations if self.iterations else 0.0

    @property
    def final_average_reward(self) -> float:
        rewards = [w.algorithm.final_average_reward() for w in self.workers]
        finite = [r for r in rewards if r != float("-inf")]
        return sum(finite) / len(finite) if finite else float("-inf")

    def projected_hours(self, total_iterations: int) -> float:
        """End-to-end hours if run for ``total_iterations`` at this rate —
        the paper's own methodology (measured per-iteration × iterations)."""
        return self.per_iteration_time * total_iterations / 3600.0

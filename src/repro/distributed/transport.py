"""Vector transport for the baseline strategies (PS push/pull, AllReduce).

The baselines exchange whole gradient/weight vectors as UDP flows.  A
flow of ``wire_bytes`` is carried as a train of chunk packets whose byte
counts exactly match per-frame framing; the *data* (a NumPy vector)
rides in the final chunk, since the simulated network never reorders a
FIFO flow and never corrupts payloads.  (iSwitch traffic instead uses the
per-segment protocol in :mod:`repro.core.protocol`, where packet-level
slicing is semantically load-bearing.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netsim.node import Host
from ..netsim.packets import MAX_UDP_PAYLOAD, Packet

__all__ = ["VECTOR_PORT", "VectorChunk", "send_vector", "VectorReceiver"]

VECTOR_PORT = 7777


@dataclass
class VectorChunk:
    """One chunk of a vector flow; ``data`` is set on the last chunk only."""

    tag: Any
    index: int
    total: int
    data: Optional[np.ndarray] = None
    meta: Any = None


def _chunk_shapes(wire_bytes: int, max_chunks: int) -> List[Tuple[int, int]]:
    """Split ``wire_bytes`` into <= max_chunks (payload, frame_count) trains."""
    n_frames = max(1, math.ceil(wire_bytes / MAX_UDP_PAYLOAD))
    frames_per_chunk = max(1, math.ceil(n_frames / max_chunks))
    shapes = []
    remaining_bytes = wire_bytes
    remaining_frames = n_frames
    while remaining_frames > 0:
        frames = min(frames_per_chunk, remaining_frames)
        payload = min(remaining_bytes, frames * MAX_UDP_PAYLOAD)
        shapes.append((payload, frames))
        remaining_bytes -= payload
        remaining_frames -= frames
    return shapes


def send_vector(
    host: Host,
    dst: str,
    tag: Any,
    vector: Optional[np.ndarray],
    wire_bytes: int,
    port: int = VECTOR_PORT,
    max_chunks: int = 64,
    meta: Any = None,
) -> int:
    """Stream one vector of ``wire_bytes`` from ``host`` to ``dst``.

    Returns the number of chunk packets sent.  ``vector`` may be ``None``
    for pure-timing flows (e.g. emulated scalability runs).
    """
    if wire_bytes < 1:
        raise ValueError(f"wire_bytes must be >= 1, got {wire_bytes}")
    shapes = _chunk_shapes(wire_bytes, max_chunks)
    total = len(shapes)
    for index, (payload_size, frames) in enumerate(shapes):
        is_last = index == total - 1
        host.send(
            Packet(
                src=host.name,
                dst=dst,
                payload_size=payload_size,
                payload=VectorChunk(
                    tag=tag,
                    index=index,
                    total=total,
                    data=vector if is_last else None,
                    meta=meta if is_last else None,
                ),
                src_port=port,
                dst_port=port,
                frame_count=frames,
            )
        )
    return total


class VectorReceiver:
    """Reassembles vector flows on a host port and fires a callback.

    The callback signature is ``(src, tag, vector, meta)`` and fires when
    the last chunk of a flow lands.
    """

    def __init__(
        self,
        host: Host,
        on_vector: Callable[[str, Any, Optional[np.ndarray], Any], None],
        port: int = VECTOR_PORT,
    ) -> None:
        self.host = host
        self.on_vector = on_vector
        self._progress: Dict[Tuple[str, Any], int] = {}
        host.bind(port, self._receive)

    def _receive(self, packet: Packet) -> None:
        chunk = packet.payload
        if not isinstance(chunk, VectorChunk):
            raise TypeError(
                f"{self.host.name}: expected VectorChunk, got "
                f"{type(chunk).__name__}"
            )
        key = (packet.src, chunk.tag)
        received = self._progress.get(key, 0) + 1
        if received < chunk.total:
            self._progress[key] = received
            return
        self._progress.pop(key, None)
        self.on_vector(packet.src, chunk.tag, chunk.data, chunk.meta)

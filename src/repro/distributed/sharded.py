"""Sharded parameter server: the PS data path split across K hosts.

Classic parameter-server training funnels every byte and every
framework-level tensor exchange through one host (Figure 1a's central
bottleneck).  The sharded variant — the BytePS/co-located style — slices
the model into K shards, each owned by a *shard server* running on one of
the worker hosts:

* push: every worker sends shard ``k`` of its gradient (≈M/K bytes) to
  shard host ``k``; the contribution to a worker's *own* shard never
  crosses the wire.
* reduce: each shard host's CPU ingests its N contributions sequentially
  (its own :class:`~repro.distributed.metrics.BusyQueue`), paying 1/K of
  the PS ingest/update cost per contribution.
* pull: once a shard's round is complete, the shard host broadcasts the
  reduced shard to all workers; a worker applies the update when all K
  shards have landed.

The data path stays 2 network hops like the PS, but both the CPU
serialization and the single-link load divide by K.  Built entirely from
the :class:`PsGather`/:class:`PsScatter` primitives — one instance pair
per shard — which is the extensibility point of the collectives layer:
no new transport or round bookkeeping was needed.

Transfers are timing-only (like Ring-AllReduce's); every worker folds
the identical full-round sum at delivery, so ps-shard rides the same
weight trajectory as every other synchronous strategy.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.topology import Network
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile
from .collectives import PsGather, PsScatter, RoundBarrier
from .metrics import BusyQueue
from .registry import register_strategy
from .sync import SyncStrategy
from .worker import SimWorker

__all__ = ["ShardedParameterServer", "DEFAULT_SHARDS"]

#: Default shard count (clamped to the worker count).
DEFAULT_SHARDS = 4

#: Every shard's gather hub listens here (hubs are distinct hosts); each
#: shard's scatter uses its own port on all workers.
SHARD_GATHER_PORT = 7821
SHARD_SCATTER_PORT_BASE = 7830


@register_strategy("sync", "ps-shard", supports_live=True)
class ShardedParameterServer(SyncStrategy):
    """Parameter server sharded across K worker-co-located hosts."""

    name = "sync-ps-shard"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        n_shards: Optional[int] = None,
    ) -> None:
        # _setup() runs inside the base __init__, so the shard count must
        # be in place before delegating.
        self._requested_shards = n_shards
        super().__init__(net, workers, profile, cost_model)

    @classmethod
    def create(cls, net, workers, profile, config) -> "ShardedParameterServer":
        return cls(
            net, workers, profile, config.cost_model, n_shards=config.ps_shards
        )

    # ------------------------------------------------------------------
    def _setup(self) -> None:
        n = len(self.workers)
        if n < 2:
            raise ValueError("ps-shard needs at least 2 workers")
        requested = self._requested_shards or DEFAULT_SHARDS
        if requested < 1:
            raise ValueError(f"n_shards must be >= 1, got {requested}")
        self.n_shards = min(requested, n)
        k = self.n_shards
        # Near-equal byte split of the model across shards.
        base, extra = divmod(self.wire_bytes, k)
        self.shard_bytes = [max(1, base + (1 if i < extra else 0)) for i in range(k)]
        messages = self.profile.message_count
        # Each shard carries 1/K of the bytes *and* 1/K of the per-tensor
        # framework work (the slicing is below the tensor-exchange level).
        ingest = self.cost.server_ingest(self.wire_bytes, messages) / k
        self._shard_update = (
            self.cost.server_update(
                self.wire_bytes, messages, self.profile.update_cost_factor
            )
            / k
        )
        self.shard_cpus: List[BusyQueue] = []
        self.gathers: List[PsGather] = []
        self.scatters: List[PsScatter] = []
        self._delivered = RoundBarrier(k, self._all_shards_delivered)
        for shard in range(k):
            hub = self.workers[shard].host
            cpu = BusyQueue(self.sim, name=f"shard{shard}")
            self.shard_cpus.append(cpu)
            self.gathers.append(
                PsGather(
                    hub,
                    cpu,
                    ingest_cost=ingest,
                    threshold=n,
                    on_round=lambda tag, s=shard: self._shard_round_complete(
                        s, tag
                    ),
                    port=SHARD_GATHER_PORT,
                    name=f"ps_shard_gather{shard}",
                )
            )
            self.scatters.append(
                PsScatter(
                    hub,
                    self.workers,
                    on_deliver=lambda w, tag, vec, meta: self._shard_delivered(
                        w, tag
                    ),
                    port=SHARD_SCATTER_PORT_BASE + shard,
                    name=f"ps_shard_scatter{shard}",
                )
            )

    # ------------------------------------------------------------------
    def _submit_gradient(self, worker, gradient, iteration) -> None:
        # Shard slices are timing-only; the true sum is folded at delivery.
        for shard, gather in enumerate(self.gathers):
            if shard == worker.index:
                gather.submit_local(worker, iteration, None)
            else:
                gather.submit(
                    worker,
                    iteration,
                    None,
                    wire_bytes=self.shard_bytes[shard],
                )

    def _shard_round_complete(self, shard: int, iteration) -> None:
        # All N contributions to this shard ingested: run this shard's
        # slice of the weight update, then fan the reduced shard out.
        self.shard_cpus[shard].submit(
            self._shard_update,
            lambda: self.scatters[shard].broadcast(
                iteration, None, wire_bytes=self.shard_bytes[shard]
            ),
        )

    def _shard_delivered(self, worker, iteration) -> None:
        self._delivered.arrive((iteration, worker.index))

    def _all_shards_delivered(self, key) -> None:
        iteration, worker_index = key
        worker = self.workers[worker_index]
        self._deliver_sum(worker, self._round_sum(iteration), iteration)

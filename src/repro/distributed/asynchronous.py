"""Asynchronous distributed training: the PS baseline and iSwitch's
pipelined, decentralized rethink (paper §4, Algorithm 1).

Both strategies are thin compositions of the collective primitives in
:mod:`repro.distributed.collectives`; they own the *policy* (staleness
accounting, Algorithm 1's two logical threads) while the primitives own
the *data path*.

**AsyncParameterServer** (Figure 3): the server keeps the authoritative
weights (a full *server replica* of the algorithm, so optimizer state,
target networks and update counting are exactly the centralized
training's).  Each worker loops: pull weights → local gradient computing →
push gradient → pull again.  Pushes land through a per-vector
:class:`PsGather` (the server CPU ingests and applies each gradient
sequentially); pulls are served back through a :class:`PsScatter`.
Gradient *staleness* — how many server updates happened between a
worker's pull and its push being applied — is an emergent, measured
quantity.

**AsyncISwitch** (Algorithm 1): no server.  Each worker runs two logical
threads over one :class:`ISwitchStream`:

* the **LGC thread** snapshots the weights (version ``tw = ts``), computes
  a gradient against the snapshot over the modelled duration, and commits
  it to the switch *only if* ``ts − tw <= S`` (the staleness bound),
  tagging the commit with the current round ``ts``.  Commits are
  non-blocking: the next LGC starts immediately (the three-stage
  pipeline, Figure 11).
* the **LWU thread** receives each aggregated gradient broadcast by the
  switch and applies ``w ← w − γ · g_sum / H``.  All replicas receive the
  same broadcasts from the same initial weights, so the decentralized
  weight copies agree forever — no parameter server needed.

Because commits are tagged with the live round, a fast worker can
contribute several gradients to one aggregation round while a slow worker
contributes none ("faster workers contribute more to the aggregation,
while slower workers commit less without blocking the training").
Contributions that arrive after their round already completed can never
reach H again; the accelerator's bounded buffer evicts them, modelling
both the BRAM budget and async training's tolerance for dropped stale
gradients.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netsim.topology import Network
from ..netsim.trace import LatencyStats
from ..rl.base import Algorithm
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile
from .collectives import ISwitchStream, PsGather, PsScatter
from .config import resolve_codec as _resolve_codec
from .metrics import BusyQueue
from .registry import register_strategy
from .results import TrainingResult
from .sync import make_plan  # noqa: F401  (historical re-export)
from .worker import SimWorker

__all__ = ["AsyncParameterServer", "AsyncISwitch"]

#: Tiny request packet for a weight pull.
PULL_REQUEST_BYTES = 64

#: Ports of the async PS data paths (push / pull-request / weights-down).
PUSH_PORT = 7811
PULL_REQUEST_PORT = 7812
WEIGHTS_PORT = 7813


@register_strategy("async", "ps", requires_server=True)
class AsyncParameterServer:
    """Figure 3: asynchronous training with a central parameter server."""

    name = "async-ps"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        server_algorithm: Algorithm,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        staleness_bound: int = 3,
    ) -> None:
        if net.server is None:
            raise ValueError("async PS needs a topology built with a server host")
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.staleness_bound = staleness_bound
        self.wire_bytes = profile.model_bytes
        self.server = net.server
        self.server_cpu = BusyQueue(self.sim, name="server")
        #: The server-side replica holding the authoritative weights.
        self.replica = server_algorithm
        self.server_updates = 0
        self.target_updates = 0
        self.staleness = LatencyStats()
        self._version_at_pull: Dict[int, int] = {}
        self._push_seq = 0
        self._done = False
        #: Fault-injection state: paused worker indices, and those whose
        #: pull->compute->push loop actually died while paused (only
        #: they need a fresh pull on restore — blindly re-pulling a loop
        #: that survived the pause window would fork a second loop).
        self._paused: set = set()
        self._pause_dropped: set = set()

        # Every pushed gradient occupies the server CPU for ingest +
        # optimizer update back to back, then is applied (per-vector
        # completion: no round barrier in asynchronous training).
        messages = self.profile.message_count
        busy = self.cost.server_ingest(
            self.wire_bytes, messages
        ) + self.cost.server_update(
            self.wire_bytes, messages, self.profile.update_cost_factor
        )
        self.gather = PsGather(
            self.server,
            self.server_cpu,
            ingest_cost=busy,
            on_vector=self._gradient_applied,
            port=PUSH_PORT,
        )
        self.server.bind(PULL_REQUEST_PORT, self._server_on_pull_request)
        self.scatter = PsScatter(
            self.server,
            self.workers,
            on_deliver=lambda w, tag, vec, meta: self._worker_on_weights(
                w, vec, meta
            ),
            port=WEIGHTS_PORT,
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "AsyncParameterServer":
        """Registry hook: build a runner from an ExperimentConfig."""
        from .runner import make_algorithm  # deferred: runner imports us

        server_algorithm = make_algorithm(
            config.workload,
            seed=config.seed + 10_000,
            **(config.algorithm_overrides or {}),
        )
        return cls(
            net,
            workers,
            profile,
            server_algorithm,
            config.cost_model,
            staleness_bound=config.staleness_bound,
        )

    def run(self, n_updates: int) -> TrainingResult:
        """Simulate until the server has applied ``n_updates`` gradients."""
        if n_updates < 1:
            raise ValueError(f"n_updates must be >= 1, got {n_updates}")
        self.target_updates = n_updates
        start = self.sim.now
        for worker in self.workers:
            self._send_pull(worker)
        self.sim.run()
        elapsed = self.sim.now - start
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=self.server_updates,
            elapsed=elapsed,
            workers=self.workers,
        )
        result.mean_staleness = self.staleness.mean
        result.max_staleness = self.staleness.max
        result.server_busy_time = self.server_cpu.busy_time
        return result

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _send_pull(self, worker: SimWorker) -> None:
        from ..netsim.packets import Packet

        worker.host.send(
            Packet(
                src=worker.name,
                dst=self.server.name,
                payload_size=PULL_REQUEST_BYTES,
                payload=worker.index,
                src_port=PULL_REQUEST_PORT,
                dst_port=PULL_REQUEST_PORT,
            )
        )

    def _worker_on_weights(self, worker: SimWorker, weights, version) -> None:
        if self._done:
            return
        if worker.index in self._paused:
            # The loop dies here; fault_restore_worker re-pulls.
            self._pause_dropped.add(worker.index)
            return
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        telemetry = self.sim.telemetry
        pulled_at = self.sim.now

        def start_lgc() -> None:
            worker.algorithm.set_weights(weights)
            worker.algorithm.on_weights_pulled(version)
            self._version_at_pull[worker.index] = version
            duration = worker.compute.lgc_duration()

            def lgc_done() -> None:
                if self._done:
                    return
                if worker.index in self._paused:
                    self._pause_dropped.add(worker.index)
                    return
                worker.breakdown.add_compute(self.profile, duration)
                if telemetry.enabled:
                    telemetry.span_at(
                        "compute.lgc",
                        self.sim.now - duration,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        version=version,
                    )
                    # Async "iteration": one pull -> compute -> push cycle.
                    telemetry.span_at(
                        "iteration",
                        pulled_at,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        version=version,
                    )
                gradient = worker.algorithm.compute_gradient()
                worker.finish_iteration()
                self._push_gradient(worker, gradient)
                self._send_pull(worker)

            self.sim.schedule(duration, lgc_done, name=f"alg:w{worker.index}")

        self.sim.schedule(ingest, start_lgc)

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_crash_worker(self, worker: SimWorker) -> bool:
        """Crash = stop this worker's pull->compute->push loop.

        The server keeps applying other workers' pushes (asynchrony is
        the whole point); this worker's in-flight cycle is dropped at its
        next checkpoint.
        """
        if len(self._paused) >= len(self.workers) - 1:
            return False  # keep at least one worker feeding the server
        self._paused.add(worker.index)
        return True

    def fault_restore_worker(self, worker: SimWorker) -> bool:
        if worker.index not in self._paused:
            return True
        self._paused.discard(worker.index)
        if worker.index in self._pause_dropped:
            # The loop actually died during the outage; restart it with a
            # fresh pull (which also resyncs weights from the server —
            # the PS architecture's built-in recovery).
            self._pause_dropped.discard(worker.index)
            if not self._done:
                self._send_pull(worker)
        return True

    def _push_gradient(self, worker: SimWorker, gradient: np.ndarray) -> None:
        self._push_seq += 1
        self.gather.submit(
            worker,
            self._push_seq,
            gradient,
            wire_bytes=self.wire_bytes,
            meta=(worker.index, self._version_at_pull.get(worker.index, 0)),
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _server_on_pull_request(self, packet) -> None:
        worker_index = packet.payload

        def serve() -> None:
            self.scatter.send_to(
                self.workers[worker_index],
                tag=("w", self.server_updates, worker_index),
                vector=self.replica.get_weights(),
                wire_bytes=self.wire_bytes,
                meta=self.server_updates,
            )

        self.server_cpu.submit(
            self.cost.pull_serve(self.wire_bytes, self.profile.message_count),
            serve,
        )

    def _gradient_applied(self, src, tag, gradient, meta) -> None:
        """Fires when one push has finished its server CPU occupancy."""
        if self._done:
            return
        worker_index, version_at_pull = meta
        staleness = self.server_updates - version_at_pull
        self.staleness.record(staleness)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("server.updates", 1)
            telemetry.observe("server.staleness", float(staleness))
        self.replica.apply_update(np.asarray(gradient, dtype=np.float64))
        self.server_updates += 1
        if self.server_updates >= self.target_updates:
            self._done = True


@register_strategy("async", "isw", requires_iswitch=True, supports_multijob=True)
class AsyncISwitch:
    """Algorithm 1: decentralized asynchronous training through the switch."""

    name = "async-isw"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        staleness_bound: int = 3,
        threshold: Optional[int] = None,
        recovery_timeout: Optional[float] = None,
        max_recovery_attempts: Optional[int] = None,
        job: int = 0,
        codec=None,
    ) -> None:
        self.net = net
        self.job = job
        self.codec = codec
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.staleness_bound = staleness_bound
        self.wire_bytes = profile.model_bytes
        self.h = threshold if threshold is not None else len(workers)
        if self.h < 1:
            raise ValueError(f"aggregation threshold H must be >= 1, got {self.h}")
        self.target_updates = 0
        self.staleness = LatencyStats()
        self.commits = 0
        self.skipped_commits = 0
        self._done = False
        #: Fault-injection state: crashed (left) worker indices.
        self._down: set = set()
        #: Per-worker shared iteration index ts (LWU-thread state).
        self._ts: List[int] = [0 for _ in workers]
        #: Per-worker simulated time of the last applied update (telemetry).
        self._last_update: List[float] = [self.sim.now for _ in workers]

        self.stream = ISwitchStream(
            net,
            workers,
            self.wire_bytes,
            on_round=lambda w, rnd, vec: self._lwu(w, vec),
            threshold=threshold,
            arrival_renumber=True,
            buffer_rounds=staleness_bound + 4,
            recovery_timeout=recovery_timeout,
            max_recovery_attempts=max_recovery_attempts,
            on_round_abandoned=self._round_abandoned,
            job=job,
            codec=codec,
        )
        self.plan = self.stream.plan
        self.clients = self.stream.clients

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "AsyncISwitch":
        """Registry hook: build a runner from an ExperimentConfig."""
        fault_armed = getattr(config, "fault_plan", None) is not None
        return cls(
            net,
            workers,
            profile,
            config.cost_model,
            staleness_bound=config.staleness_bound,
            # Loss recovery is only armed for fault-injected runs:
            # plain lossy async runs keep the historical behaviour
            # (renumbering + bounded buffers absorb drops), while a
            # switch Reset needs Help/retransmit with a finite retry
            # budget to refill the rounds it wiped.
            recovery_timeout=(
                config.resolved_recovery_timeout() if fault_armed else None
            ),
            max_recovery_attempts=12 if fault_armed else None,
            job=getattr(config, "job_id", 0),
            codec=_resolve_codec(config),
        )

    def run(self, n_updates: int) -> TrainingResult:
        """Simulate until every worker has applied ``n_updates`` updates."""
        if n_updates < 1:
            raise ValueError(f"n_updates must be >= 1, got {n_updates}")
        self.target_updates = n_updates
        start = self.sim.now
        for worker in self.workers:
            self._start_lgc(worker)
        self.sim.run()
        elapsed = self.sim.now - start
        iterations = min(self._ts)
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=iterations,
            elapsed=elapsed,
            workers=self.workers,
        )
        result.mean_staleness = self.staleness.mean
        result.max_staleness = self.staleness.max
        result.commits = self.commits
        result.skipped_commits = self.skipped_commits
        return result

    # ------------------------------------------------------------------
    # LGC thread
    # ------------------------------------------------------------------
    def _start_lgc(self, worker: SimWorker) -> None:
        if self._done:
            return
        if worker.index in self._down:
            return  # crashed: the loop restarts from fault_restore_worker
        tw = self._ts[worker.index]
        snapshot = worker.algorithm.get_weights()
        duration = worker.compute.lgc_duration()

        def lgc_done() -> None:
            if self._done:
                return
            ts = self._ts[worker.index]
            worker.breakdown.add_compute(self.profile, duration)
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.span_at(
                    "compute.lgc",
                    self.sim.now - duration,
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    ts=ts,
                )
            # The gradient is computed against the weights the LGC thread
            # copied at iteration tw (Algorithm 1 line "copy updated
            # weight"); the LWU thread may have moved the live weights on.
            current = worker.algorithm.get_weights()
            worker.algorithm.set_weights(snapshot)
            gradient = worker.algorithm.compute_gradient()
            worker.algorithm.set_weights(current)
            staleness = ts - tw
            if staleness <= self.staleness_bound:
                self.staleness.record(staleness)
                self.commits += 1
                if telemetry.enabled:
                    telemetry.inc("worker.commits", 1, worker=worker.name)
                self.stream.submit(worker, gradient, ts)
            else:
                self.skipped_commits += 1
                if telemetry.enabled:
                    telemetry.inc(
                        "worker.skipped_commits", 1, worker=worker.name
                    )
            self._start_lgc(worker)  # non-blocking commit: pipeline on

        self.sim.schedule(duration, lgc_done, name=f"lgc:w{worker.index}")

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_crash_worker(self, worker: SimWorker) -> bool:
        """Crash = real ``Leave`` + stop the LGC/LWU pipeline.

        The switch re-derives H from the shrunk membership and sweeps
        stranded rounds; the survivors continue — asynchronous training's
        staleness-bounded continuation, with rounds now formed from one
        fewer contribution.
        """
        if len(self.workers) - len(self._down) <= 1:
            return False
        if worker.index in self._down:
            return False
        self._down.add(worker.index)
        client = self.clients[worker.index]
        client.cancel_recovery()
        client.leave()
        if self.h > 1:
            self.h -= 1  # future rounds sum one fewer gradient
        return True

    def fault_restore_worker(self, worker: SimWorker) -> bool:
        from ..faults.resync import clone_training_state

        if worker.index not in self._down:
            return True
        self._down.discard(worker.index)
        source = next(
            (
                peer
                for peer in self.workers
                if peer.index != worker.index and peer.index not in self._down
            ),
            None,
        )
        if source is not None:
            # Resync the replica to a live peer: weights, optimizer
            # moments and target nets, plus the shared-iteration counter
            # (the paper's decentralized weights only agree when every
            # member applied the same broadcast stream; a rejoiner must
            # adopt a live member's view wholesale).
            clone_training_state(source.algorithm, worker.algorithm)
            self._ts[worker.index] = self._ts[source.index]
        self._last_update[worker.index] = self.sim.now
        client = self.clients[worker.index]
        client._partial.clear()
        client.join()
        self.h = min(len(self.workers), self.h + 1)
        self._start_lgc(worker)
        return True

    def fault_reset_switch(self, switch) -> bool:
        # A real Reset control packet from a live member of that switch;
        # out-of-band engine reset if none of our members sit under it.
        for index, tor in enumerate(self.net.tor_of_worker):
            if tor.name == switch.name and index not in self._down:
                self.clients[index].reset_switch()
                return True
        switch.engine.reset()
        return True

    def _round_abandoned(self, worker: SimWorker, round_index: int) -> None:
        """Liveness backstop: a round this replica can never assemble.

        The client exhausted ``max_recovery_attempts`` (Help went
        unanswered — e.g. the result aged out of the switch cache during
        a long loss burst).  Training termination is gated on
        ``min(ts)``, so count the permanently missed update and move on;
        the replica skips one broadcast (bounded divergence, same class
        as async staleness) instead of stalling the whole run.
        """
        if self._done or worker.index in self._down:
            return
        self._ts[worker.index] += 1
        self._last_update[worker.index] = self.sim.now
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("worker.updates_missed", 1, worker=worker.name)
        if min(self._ts) >= self.target_updates:
            self._done = True

    # ------------------------------------------------------------------
    # LWU thread
    # ------------------------------------------------------------------
    def _lwu(self, worker: SimWorker, summed: np.ndarray) -> None:
        if self._done and self._ts[worker.index] >= self.target_updates:
            return
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        lwu = worker.compute.lwu_duration()

        def apply() -> None:
            worker.algorithm.apply_update(
                np.asarray(summed, dtype=np.float64) / self.h
            )
            self._ts[worker.index] += 1
            worker.finish_iteration()
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                # Async "iteration": interval between consecutive weight
                # updates at this replica (the paper's §5.2 definition).
                telemetry.span_at(
                    "iteration",
                    self._last_update[worker.index],
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    ts=self._ts[worker.index],
                )
            self._last_update[worker.index] = self.sim.now
            if min(self._ts) >= self.target_updates:
                self._done = True

        self.sim.schedule(ingest + lwu, apply, name=f"lwu:w{worker.index}")

"""Asynchronous distributed training: the PS baseline and iSwitch's
pipelined, decentralized rethink (paper §4, Algorithm 1).

Both strategies are thin compositions of the collective primitives in
:mod:`repro.distributed.collectives`; they own the *policy* (staleness
accounting, Algorithm 1's two logical threads) while the primitives own
the *data path*.

**AsyncParameterServer** (Figure 3): the server keeps the authoritative
weights (a full *server replica* of the algorithm, so optimizer state,
target networks and update counting are exactly the centralized
training's).  Each worker loops: pull weights → local gradient computing →
push gradient → pull again.  Pushes land through a per-vector
:class:`PsGather` (the server CPU ingests and applies each gradient
sequentially); pulls are served back through a :class:`PsScatter`.
Gradient *staleness* — how many server updates happened between a
worker's pull and its push being applied — is an emergent, measured
quantity.

**AsyncISwitch** (Algorithm 1): no server.  Each worker runs two logical
threads over one :class:`ISwitchStream`:

* the **LGC thread** snapshots the weights (version ``tw = ts``), computes
  a gradient against the snapshot over the modelled duration, and commits
  it to the switch *only if* ``ts − tw <= S`` (the staleness bound),
  tagging the commit with the current round ``ts``.  Commits are
  non-blocking: the next LGC starts immediately (the three-stage
  pipeline, Figure 11).
* the **LWU thread** receives each aggregated gradient broadcast by the
  switch and applies ``w ← w − γ · g_sum / H``.  All replicas receive the
  same broadcasts from the same initial weights, so the decentralized
  weight copies agree forever — no parameter server needed.

Because commits are tagged with the live round, a fast worker can
contribute several gradients to one aggregation round while a slow worker
contributes none ("faster workers contribute more to the aggregation,
while slower workers commit less without blocking the training").
Contributions that arrive after their round already completed can never
reach H again; the accelerator's bounded buffer evicts them, modelling
both the BRAM budget and async training's tolerance for dropped stale
gradients.

**Paced mode** (``ExperimentConfig(deterministic_aggregation=True)``):
both strategies additionally support a deterministic schedule used by the
sim↔live conformance suite (DESIGN.md §9.4).  Default async behaviour is
emergent — staleness depends on event timing, so two backends cannot be
bit-compared.  Paced mode fixes the *schedule* while leaving the data
path untouched:

* paced async-isw: worker ``w`` computes gradient ``k`` against weights
  at version exactly ``max(0, k - S)`` and applies round ``r`` only after
  rounds ``< r``; every applied gradient's version gap is ``min(r, S)``,
  which makes the staleness bound ``S`` tight and checkable.
* paced async-ps: the server applies pushes in rank-cyclic order
  ``(cycle 0, w0) .. (cycle 0, wN-1), (cycle 1, w0) ..`` (buffering
  out-of-order arrivals) and ships the post-apply weights straight back
  to the pushing worker, so worker ``w``'s cycle-``k`` pull is
  deterministically version ``(k-1)·N + w + 1`` and its staleness is
  exactly ``N - 1`` (``w`` on the cold-start cycle).

Arrival jitter still exists in both backends — it just moves *when*
values land, never *which* values, so live processes under real
scheduling noise must reproduce the simulator bit for bit.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netsim.topology import Network
from ..netsim.trace import LatencyStats
from ..rl.base import Algorithm
from ..workloads.calibration import DEFAULT_COST_MODEL, CostModel
from ..workloads.profiles import WorkloadProfile
from .collectives import ISwitchStream, PsGather, PsScatter
from .config import resolve_codec as _resolve_codec
from .metrics import BusyQueue
from .registry import register_strategy
from .results import TrainingResult
from .sync import make_plan  # noqa: F401  (historical re-export)
from .worker import SimWorker

__all__ = ["AsyncParameterServer", "AsyncISwitch"]

#: Tiny request packet for a weight pull.
PULL_REQUEST_BYTES = 64

#: Ports of the async PS data paths (push / pull-request / weights-down).
PUSH_PORT = 7811
PULL_REQUEST_PORT = 7812
WEIGHTS_PORT = 7813


@register_strategy("async", "ps", requires_server=True, supports_live=True)
class AsyncParameterServer:
    """Figure 3: asynchronous training with a central parameter server."""

    name = "async-ps"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        server_algorithm: Algorithm,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        staleness_bound: int = 3,
        paced: bool = False,
    ) -> None:
        if net.server is None:
            raise ValueError("async PS needs a topology built with a server host")
        self.net = net
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.staleness_bound = staleness_bound
        self.wire_bytes = profile.model_bytes
        self.server = net.server
        self.server_cpu = BusyQueue(self.sim, name="server")
        #: The server-side replica holding the authoritative weights.
        self.replica = server_algorithm
        self.server_updates = 0
        self.target_updates = 0
        self.staleness = LatencyStats()
        self._version_at_pull: Dict[int, int] = {}
        self._push_seq = 0
        self._done = False
        #: Fault-injection state: paused worker indices, and those whose
        #: pull->compute->push loop actually died while paused (only
        #: they need a fresh pull on restore — blindly re-pulling a loop
        #: that survived the pause window would fork a second loop).
        self._paused: set = set()
        self._pause_dropped: set = set()
        #: Paced (deterministic) schedule for the conformance suite: the
        #: server applies pushes in rank-cyclic order and pushes weights
        #: straight back, so staleness is a closed-form quantity (module
        #: docstring).  ``run(n)`` then means n *cycles per worker*.
        self.paced = paced
        self.target_cycles = 0
        self._paced_pending: Dict[Tuple[int, int], Tuple[np.ndarray, int]] = {}
        self._paced_version = [0 for _ in workers]
        #: Per-worker sha256 digests of each pulled weight vector (paced
        #: mode only) — the live backend's differential artifact.
        self.worker_digests: List[List[str]] = [[] for _ in workers]

        # Every pushed gradient occupies the server CPU for ingest +
        # optimizer update back to back, then is applied (per-vector
        # completion: no round barrier in asynchronous training).
        messages = self.profile.message_count
        busy = self.cost.server_ingest(
            self.wire_bytes, messages
        ) + self.cost.server_update(
            self.wire_bytes, messages, self.profile.update_cost_factor
        )
        self.gather = PsGather(
            self.server,
            self.server_cpu,
            ingest_cost=busy,
            on_vector=self._gradient_applied,
            port=PUSH_PORT,
        )
        self.server.bind(PULL_REQUEST_PORT, self._server_on_pull_request)
        self.scatter = PsScatter(
            self.server,
            self.workers,
            on_deliver=lambda w, tag, vec, meta: self._worker_on_weights(
                w, vec, meta
            ),
            port=WEIGHTS_PORT,
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "AsyncParameterServer":
        """Registry hook: build a runner from an ExperimentConfig."""
        from .runner import make_algorithm  # deferred: runner imports us

        server_algorithm = make_algorithm(
            config.workload,
            seed=config.seed + 10_000,
            **(config.algorithm_overrides or {}),
        )
        return cls(
            net,
            workers,
            profile,
            server_algorithm,
            config.cost_model,
            staleness_bound=config.staleness_bound,
            # Paced mode redefines the schedule, and the fault hooks
            # assume the emergent pull loop — the two don't compose.
            paced=(
                config.deterministic_aggregation
                and getattr(config, "fault_plan", None) is None
            ),
        )

    def run(self, n_updates: int) -> TrainingResult:
        """Simulate until the server has applied ``n_updates`` gradients.

        In paced mode ``n_updates`` counts *cycles per worker* instead
        (``n_updates * n_workers`` server applies), matching the live
        backend's per-worker iteration semantics.
        """
        if n_updates < 1:
            raise ValueError(f"n_updates must be >= 1, got {n_updates}")
        start = self.sim.now
        if self.paced:
            self.target_cycles = n_updates
            self.target_updates = n_updates * len(self.workers)
            for worker in self.workers:
                self._paced_compute(worker, 0)
        else:
            self.target_updates = n_updates
            for worker in self.workers:
                self._send_pull(worker)
        self.sim.run()
        elapsed = self.sim.now - start
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=(
                self.target_cycles if self.paced else self.server_updates
            ),
            elapsed=elapsed,
            workers=self.workers,
        )
        result.mean_staleness = self.staleness.mean
        result.max_staleness = self.staleness.max
        result.server_busy_time = self.server_cpu.busy_time
        if self.paced:
            result.worker_digests = {
                worker.index: list(self.worker_digests[worker.index])
                for worker in self.workers
            }
        return result

    # ------------------------------------------------------------------
    # Paced schedule (deterministic_aggregation — conformance runs)
    # ------------------------------------------------------------------
    def _paced_compute(self, worker: SimWorker, cycle: int) -> None:
        """One paced cycle: compute against the current replica weights
        (cycle 0 uses the worker's own init, identical by ``init_seed``),
        then push tagged with the cycle index."""
        duration = worker.compute.lgc_duration()

        def lgc_done() -> None:
            worker.breakdown.add_compute(self.profile, duration)
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.span_at(
                    "compute.lgc",
                    self.sim.now - duration,
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    version=self._paced_version[worker.index],
                )
            gradient = worker.algorithm.compute_gradient()
            worker.finish_iteration()
            self._push_seq += 1
            self.gather.submit(
                worker,
                self._push_seq,
                gradient,
                wire_bytes=self.wire_bytes,
                meta=(worker.index, cycle, self._paced_version[worker.index]),
            )

        self.sim.schedule(duration, lgc_done, name=f"alg:w{worker.index}")

    def _paced_apply_ready(self) -> None:
        """Apply every buffered push that is next in rank-cyclic order."""
        n = len(self.workers)
        telemetry = self.sim.telemetry
        while True:
            cycle, rank = divmod(self.server_updates, n)
            entry = self._paced_pending.pop((cycle, rank), None)
            if entry is None:
                return
            gradient, version_at_compute = entry
            staleness = self.server_updates - version_at_compute
            self.staleness.record(staleness)
            if telemetry.enabled:
                telemetry.inc("server.updates", 1)
                telemetry.observe("server.staleness", float(staleness))
            self.replica.apply_update(np.asarray(gradient, dtype=np.float64))
            self.server_updates += 1
            # Push-triggered weight delivery: the pulled version is a pure
            # function of (cycle, rank), never of arrival timing.
            self.scatter.send_to(
                self.workers[rank],
                tag=("w", self.server_updates, rank),
                vector=self.replica.get_weights(),
                wire_bytes=self.wire_bytes,
                meta=(self.server_updates, cycle + 1),
            )

    def _paced_on_weights(self, worker: SimWorker, weights, meta) -> None:
        version, cycle = meta
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )

        def start() -> None:
            vec = np.ascontiguousarray(
                np.asarray(weights, dtype=np.float64)
            )
            self.worker_digests[worker.index].append(
                hashlib.sha256(vec.tobytes()).hexdigest()[:16]
            )
            worker.algorithm.set_weights(weights)
            worker.algorithm.on_weights_pulled(version)
            self._paced_version[worker.index] = version
            if cycle < self.target_cycles:
                self._paced_compute(worker, cycle)

        self.sim.schedule(ingest, start)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _send_pull(self, worker: SimWorker) -> None:
        from ..netsim.packets import Packet

        worker.host.send(
            Packet(
                src=worker.name,
                dst=self.server.name,
                payload_size=PULL_REQUEST_BYTES,
                payload=worker.index,
                src_port=PULL_REQUEST_PORT,
                dst_port=PULL_REQUEST_PORT,
            )
        )

    def _worker_on_weights(self, worker: SimWorker, weights, version) -> None:
        if self.paced:
            self._paced_on_weights(worker, weights, version)
            return
        if self._done:
            return
        if worker.index in self._paused:
            # The loop dies here; fault_restore_worker re-pulls.
            self._pause_dropped.add(worker.index)
            return
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        telemetry = self.sim.telemetry
        pulled_at = self.sim.now

        def start_lgc() -> None:
            worker.algorithm.set_weights(weights)
            worker.algorithm.on_weights_pulled(version)
            self._version_at_pull[worker.index] = version
            duration = worker.compute.lgc_duration()

            def lgc_done() -> None:
                if self._done:
                    return
                if worker.index in self._paused:
                    self._pause_dropped.add(worker.index)
                    return
                worker.breakdown.add_compute(self.profile, duration)
                if telemetry.enabled:
                    telemetry.span_at(
                        "compute.lgc",
                        self.sim.now - duration,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        version=version,
                    )
                    # Async "iteration": one pull -> compute -> push cycle.
                    telemetry.span_at(
                        "iteration",
                        pulled_at,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        version=version,
                    )
                gradient = worker.algorithm.compute_gradient()
                worker.finish_iteration()
                self._push_gradient(worker, gradient)
                self._send_pull(worker)

            self.sim.schedule(duration, lgc_done, name=f"alg:w{worker.index}")

        self.sim.schedule(ingest, start_lgc)

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_crash_worker(self, worker: SimWorker) -> bool:
        """Crash = stop this worker's pull->compute->push loop.

        The server keeps applying other workers' pushes (asynchrony is
        the whole point); this worker's in-flight cycle is dropped at its
        next checkpoint.
        """
        if len(self._paused) >= len(self.workers) - 1:
            return False  # keep at least one worker feeding the server
        self._paused.add(worker.index)
        return True

    def fault_restore_worker(self, worker: SimWorker) -> bool:
        if worker.index not in self._paused:
            return True
        self._paused.discard(worker.index)
        if worker.index in self._pause_dropped:
            # The loop actually died during the outage; restart it with a
            # fresh pull (which also resyncs weights from the server —
            # the PS architecture's built-in recovery).
            self._pause_dropped.discard(worker.index)
            if not self._done:
                self._send_pull(worker)
        return True

    def _push_gradient(self, worker: SimWorker, gradient: np.ndarray) -> None:
        self._push_seq += 1
        self.gather.submit(
            worker,
            self._push_seq,
            gradient,
            wire_bytes=self.wire_bytes,
            meta=(worker.index, self._version_at_pull.get(worker.index, 0)),
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _server_on_pull_request(self, packet) -> None:
        worker_index = packet.payload

        def serve() -> None:
            self.scatter.send_to(
                self.workers[worker_index],
                tag=("w", self.server_updates, worker_index),
                vector=self.replica.get_weights(),
                wire_bytes=self.wire_bytes,
                meta=self.server_updates,
            )

        self.server_cpu.submit(
            self.cost.pull_serve(self.wire_bytes, self.profile.message_count),
            serve,
        )

    def _gradient_applied(self, src, tag, gradient, meta) -> None:
        """Fires when one push has finished its server CPU occupancy."""
        if self.paced:
            worker_index, cycle, version_at_compute = meta
            self._paced_pending[(cycle, worker_index)] = (
                gradient,
                version_at_compute,
            )
            self._paced_apply_ready()
            return
        if self._done:
            return
        worker_index, version_at_pull = meta
        staleness = self.server_updates - version_at_pull
        self.staleness.record(staleness)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("server.updates", 1)
            telemetry.observe("server.staleness", float(staleness))
        self.replica.apply_update(np.asarray(gradient, dtype=np.float64))
        self.server_updates += 1
        if self.server_updates >= self.target_updates:
            self._done = True


@register_strategy(
    "async",
    "isw",
    requires_iswitch=True,
    supports_multijob=True,
    supports_live=True,
)
class AsyncISwitch:
    """Algorithm 1: decentralized asynchronous training through the switch."""

    name = "async-isw"

    def __init__(
        self,
        net: Network,
        workers: List[SimWorker],
        profile: WorkloadProfile,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        staleness_bound: int = 3,
        threshold: Optional[int] = None,
        recovery_timeout: Optional[float] = None,
        max_recovery_attempts: Optional[int] = None,
        job: int = 0,
        codec=None,
        paced: bool = False,
    ) -> None:
        self.net = net
        self.job = job
        self.codec = codec
        self.sim = net.sim
        self.workers = workers
        self.profile = profile
        self.cost = cost_model
        self.staleness_bound = staleness_bound
        self.wire_bytes = profile.model_bytes
        self.h = threshold if threshold is not None else len(workers)
        if self.h < 1:
            raise ValueError(f"aggregation threshold H must be >= 1, got {self.h}")
        self.target_updates = 0
        self.staleness = LatencyStats()
        self.commits = 0
        self.skipped_commits = 0
        self._done = False
        #: Fault-injection state: crashed (left) worker indices.
        self._down: set = set()
        #: Per-worker shared iteration index ts (LWU-thread state).
        self._ts: List[int] = [0 for _ in workers]
        #: Per-worker simulated time of the last applied update (telemetry).
        self._last_update: List[float] = [self.sim.now for _ in workers]
        #: Paced (deterministic) schedule: explicit round tags instead of
        #: arrival renumbering, computes gated on applied version (module
        #: docstring; the live backend runs the same schedule).
        self.paced = paced
        self._paced_k: List[int] = [0 for _ in workers]
        self._paced_busy: List[bool] = [False for _ in workers]
        self._paced_buf: List[Dict[int, np.ndarray]] = [{} for _ in workers]
        #: Version the weights were at when round r's gradient was
        #: computed, per worker — the measured side of the gap assertion.
        self._paced_versions: List[List[int]] = [[] for _ in workers]
        self.worker_round_digests: List[List[str]] = [[] for _ in workers]

        self.stream = ISwitchStream(
            net,
            workers,
            self.wire_bytes,
            on_round=(
                self._paced_on_round
                if paced
                else (lambda w, rnd, vec: self._lwu(w, vec))
            ),
            threshold=threshold,
            arrival_renumber=not paced,
            buffer_rounds=None if paced else staleness_bound + 4,
            recovery_timeout=recovery_timeout,
            max_recovery_attempts=max_recovery_attempts,
            on_round_abandoned=self._round_abandoned,
            job=job,
            codec=codec,
        )
        self.plan = self.stream.plan
        self.clients = self.stream.clients

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, net: Network, workers: List[SimWorker], profile, config
    ) -> "AsyncISwitch":
        """Registry hook: build a runner from an ExperimentConfig."""
        fault_armed = getattr(config, "fault_plan", None) is not None
        return cls(
            net,
            workers,
            profile,
            config.cost_model,
            staleness_bound=config.staleness_bound,
            # Loss recovery is only armed for fault-injected runs:
            # plain lossy async runs keep the historical behaviour
            # (renumbering + bounded buffers absorb drops), while a
            # switch Reset needs Help/retransmit with a finite retry
            # budget to refill the rounds it wiped.
            recovery_timeout=(
                config.resolved_recovery_timeout() if fault_armed else None
            ),
            max_recovery_attempts=12 if fault_armed else None,
            job=getattr(config, "job_id", 0),
            codec=_resolve_codec(config),
            paced=(config.deterministic_aggregation and not fault_armed),
        )

    def run(self, n_updates: int) -> TrainingResult:
        """Simulate until every worker has applied ``n_updates`` updates."""
        if n_updates < 1:
            raise ValueError(f"n_updates must be >= 1, got {n_updates}")
        self.target_updates = n_updates
        start = self.sim.now
        for worker in self.workers:
            if self.paced:
                self._paced_step(worker)
            else:
                self._start_lgc(worker)
        self.sim.run()
        elapsed = self.sim.now - start
        iterations = min(self._ts)
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=iterations,
            elapsed=elapsed,
            workers=self.workers,
        )
        result.mean_staleness = self.staleness.mean
        result.max_staleness = self.staleness.max
        result.commits = self.commits
        result.skipped_commits = self.skipped_commits
        if self.paced:
            # Every replica applies the same broadcast stream, so the
            # digest lists must agree — surface rank 0's as the run's.
            result.round_digests = list(self.worker_round_digests[0])
            result.worker_digests = {
                worker.index: list(self.worker_round_digests[worker.index])
                for worker in self.workers
            }
        return result

    # ------------------------------------------------------------------
    # Paced schedule (deterministic_aggregation — conformance runs)
    # ------------------------------------------------------------------
    def _paced_step(self, worker: SimWorker) -> None:
        """Advance one worker's paced pipeline by at most one action.

        Compute ``k`` starts only once exactly ``max(0, k - S)`` rounds
        are applied — which means the live weights *are* the version the
        gradient must see, no snapshot juggling.  Otherwise the next
        pending broadcast (if buffered) is applied.  Both re-enter here,
        so the pipeline alternates compute/apply deterministically.
        """
        index = worker.index
        if self._paced_busy[index]:
            return
        k = self._paced_k[index]
        applied = self._ts[index]
        bound = self.staleness_bound
        if k < self.target_updates and applied == max(0, k - bound):
            self._paced_busy[index] = True
            duration = worker.compute.lgc_duration()

            def lgc_done() -> None:
                worker.breakdown.add_compute(self.profile, duration)
                telemetry = self.sim.telemetry
                if telemetry.enabled:
                    telemetry.span_at(
                        "compute.lgc",
                        self.sim.now - duration,
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        ts=k,
                    )
                    telemetry.inc("worker.commits", 1, worker=worker.name)
                gradient = worker.algorithm.compute_gradient()
                self._paced_versions[index].append(self._ts[index])
                self.commits += 1
                self.stream.submit(worker, gradient, k)
                self._paced_k[index] = k + 1
                self._paced_busy[index] = False
                self._paced_step(worker)

            self.sim.schedule(duration, lgc_done, name=f"lgc:w{index}")
            return
        if applied < self.target_updates and applied in self._paced_buf[index]:
            summed = self._paced_buf[index].pop(applied)
            self._paced_busy[index] = True
            ingest = self.cost.worker_ingest(
                self.wire_bytes, self.profile.message_count
            )
            lwu = worker.compute.lwu_duration()

            def apply() -> None:
                round_index = self._ts[index]
                vec32 = np.ascontiguousarray(
                    np.asarray(summed, dtype=np.float32)
                )
                self.worker_round_digests[index].append(
                    hashlib.sha256(vec32.tobytes()).hexdigest()[:16]
                )
                worker.algorithm.apply_update(
                    np.asarray(summed, dtype=np.float64) / self.h
                )
                gap = round_index - self._paced_versions[index][round_index]
                self.staleness.record(gap)
                self._ts[index] = round_index + 1
                worker.finish_iteration()
                telemetry = self.sim.telemetry
                if telemetry.enabled:
                    telemetry.span_at(
                        "iteration",
                        self._last_update[index],
                        self.sim.now,
                        cat="training",
                        track=worker.name,
                        ts=self._ts[index],
                    )
                self._last_update[index] = self.sim.now
                if min(self._ts) >= self.target_updates:
                    self._done = True
                self._paced_busy[index] = False
                self._paced_step(worker)

            self.sim.schedule(ingest + lwu, apply, name=f"lwu:w{index}")

    def _paced_on_round(self, worker: SimWorker, rnd: int, vec) -> None:
        """Broadcast landed: buffer it and let the pipeline apply in order."""
        self._paced_buf[worker.index][rnd] = vec
        self._paced_step(worker)

    # ------------------------------------------------------------------
    # LGC thread
    # ------------------------------------------------------------------
    def _start_lgc(self, worker: SimWorker) -> None:
        if self._done:
            return
        if worker.index in self._down:
            return  # crashed: the loop restarts from fault_restore_worker
        tw = self._ts[worker.index]
        snapshot = worker.algorithm.get_weights()
        duration = worker.compute.lgc_duration()

        def lgc_done() -> None:
            if self._done:
                return
            ts = self._ts[worker.index]
            worker.breakdown.add_compute(self.profile, duration)
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.span_at(
                    "compute.lgc",
                    self.sim.now - duration,
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    ts=ts,
                )
            # The gradient is computed against the weights the LGC thread
            # copied at iteration tw (Algorithm 1 line "copy updated
            # weight"); the LWU thread may have moved the live weights on.
            current = worker.algorithm.get_weights()
            worker.algorithm.set_weights(snapshot)
            gradient = worker.algorithm.compute_gradient()
            worker.algorithm.set_weights(current)
            staleness = ts - tw
            if staleness <= self.staleness_bound:
                self.staleness.record(staleness)
                self.commits += 1
                if telemetry.enabled:
                    telemetry.inc("worker.commits", 1, worker=worker.name)
                self.stream.submit(worker, gradient, ts)
            else:
                self.skipped_commits += 1
                if telemetry.enabled:
                    telemetry.inc(
                        "worker.skipped_commits", 1, worker=worker.name
                    )
            self._start_lgc(worker)  # non-blocking commit: pipeline on

        self.sim.schedule(duration, lgc_done, name=f"lgc:w{worker.index}")

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_crash_worker(self, worker: SimWorker) -> bool:
        """Crash = real ``Leave`` + stop the LGC/LWU pipeline.

        The switch re-derives H from the shrunk membership and sweeps
        stranded rounds; the survivors continue — asynchronous training's
        staleness-bounded continuation, with rounds now formed from one
        fewer contribution.
        """
        if len(self.workers) - len(self._down) <= 1:
            return False
        if worker.index in self._down:
            return False
        self._down.add(worker.index)
        client = self.clients[worker.index]
        client.cancel_recovery()
        client.leave()
        if self.h > 1:
            self.h -= 1  # future rounds sum one fewer gradient
        return True

    def fault_restore_worker(self, worker: SimWorker) -> bool:
        from ..faults.resync import clone_training_state

        if worker.index not in self._down:
            return True
        self._down.discard(worker.index)
        source = next(
            (
                peer
                for peer in self.workers
                if peer.index != worker.index and peer.index not in self._down
            ),
            None,
        )
        if source is not None:
            # Resync the replica to a live peer: weights, optimizer
            # moments and target nets, plus the shared-iteration counter
            # (the paper's decentralized weights only agree when every
            # member applied the same broadcast stream; a rejoiner must
            # adopt a live member's view wholesale).
            clone_training_state(source.algorithm, worker.algorithm)
            self._ts[worker.index] = self._ts[source.index]
        self._last_update[worker.index] = self.sim.now
        client = self.clients[worker.index]
        client._partial.clear()
        client.join()
        self.h = min(len(self.workers), self.h + 1)
        self._start_lgc(worker)
        return True

    def fault_reset_switch(self, switch) -> bool:
        # A real Reset control packet from a live member of that switch;
        # out-of-band engine reset if none of our members sit under it.
        for index, tor in enumerate(self.net.tor_of_worker):
            if tor.name == switch.name and index not in self._down:
                self.clients[index].reset_switch()
                return True
        switch.engine.reset()
        return True

    def _round_abandoned(self, worker: SimWorker, round_index: int) -> None:
        """Liveness backstop: a round this replica can never assemble.

        The client exhausted ``max_recovery_attempts`` (Help went
        unanswered — e.g. the result aged out of the switch cache during
        a long loss burst).  Training termination is gated on
        ``min(ts)``, so count the permanently missed update and move on;
        the replica skips one broadcast (bounded divergence, same class
        as async staleness) instead of stalling the whole run.
        """
        if self._done or worker.index in self._down:
            return
        self._ts[worker.index] += 1
        self._last_update[worker.index] = self.sim.now
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("worker.updates_missed", 1, worker=worker.name)
        if min(self._ts) >= self.target_updates:
            self._done = True

    # ------------------------------------------------------------------
    # LWU thread
    # ------------------------------------------------------------------
    def _lwu(self, worker: SimWorker, summed: np.ndarray) -> None:
        if self._done and self._ts[worker.index] >= self.target_updates:
            return
        ingest = self.cost.worker_ingest(
            self.wire_bytes, self.profile.message_count
        )
        lwu = worker.compute.lwu_duration()

        def apply() -> None:
            worker.algorithm.apply_update(
                np.asarray(summed, dtype=np.float64) / self.h
            )
            self._ts[worker.index] += 1
            worker.finish_iteration()
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                # Async "iteration": interval between consecutive weight
                # updates at this replica (the paper's §5.2 definition).
                telemetry.span_at(
                    "iteration",
                    self._last_update[worker.index],
                    self.sim.now,
                    cat="training",
                    track=worker.name,
                    ts=self._ts[worker.index],
                )
            self._last_update[worker.index] = self.sim.now
            if min(self._ts) >= self.target_updates:
                self._done = True

        self.sim.schedule(ingest + lwu, apply, name=f"lwu:w{worker.index}")

"""Per-iteration timing accounting matching Figure 4's component taxonomy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..workloads.profiles import BREAKDOWN_COMPONENTS, WorkloadProfile

__all__ = ["IterationBreakdown", "BusyQueue", "split_compute_time"]


def split_compute_time(
    profile: WorkloadProfile, compute_time: float
) -> Dict[str, float]:
    """Distribute one iteration's LGC duration over Figure 4's compute
    components using the profile's calibrated fractions."""
    return {
        component: compute_time * fraction
        for component, fraction in profile.compute_breakdown.items()
    }


@dataclass
class IterationBreakdown:
    """Accumulated seconds per Figure 4 component, across iterations."""

    totals: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in BREAKDOWN_COMPONENTS}
    )
    iterations: int = 0

    def add(self, component: str, seconds: float) -> None:
        if component not in self.totals:
            raise KeyError(
                f"unknown breakdown component {component!r}; "
                f"expected one of {BREAKDOWN_COMPONENTS}"
            )
        if seconds < 0:
            raise ValueError(f"negative duration for {component}: {seconds}")
        self.totals[component] += seconds

    def add_compute(self, profile: WorkloadProfile, compute_time: float) -> None:
        for component, seconds in split_compute_time(profile, compute_time).items():
            self.add(component, seconds)

    def finish_iteration(self) -> None:
        self.iterations += 1

    @property
    def total_time(self) -> float:
        return sum(self.totals.values())

    def percentages(self) -> Dict[str, float]:
        """Per-component share of total time (sums to 100)."""
        total = self.total_time
        if total <= 0:
            return {c: 0.0 for c in self.totals}
        return {c: 100.0 * v / total for c, v in self.totals.items()}

    def mean_per_iteration(self) -> Dict[str, float]:
        if self.iterations == 0:
            return {c: 0.0 for c in self.totals}
        return {c: v / self.iterations for c, v in self.totals.items()}

    @property
    def aggregation_share(self) -> float:
        """Fraction of time spent in gradient aggregation (Figure 4's
        headline number)."""
        total = self.total_time
        return self.totals["grad_aggregation"] / total if total > 0 else 0.0


class BusyQueue:
    """Sequential-processor model for a host CPU.

    Work items occupy the processor back to back; :meth:`submit` returns
    the completion time of the submitted item.  Used for the parameter
    server's ingest/update pipeline, where serialization of host work —
    not just the NIC — creates the central bottleneck the paper describes.
    """

    def __init__(self, sim, name: str = "cpu") -> None:
        self.sim = sim
        self.name = name
        self._busy_until = 0.0
        self.busy_time = 0.0

    def submit(self, duration: float, callback=None) -> float:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        start = max(self.sim.now, self._busy_until)
        finish = start + duration
        self._busy_until = finish
        self.busy_time += duration
        if self.sim.telemetry.enabled:
            self.sim.telemetry.set_gauge(
                "busyqueue.backlog_seconds",
                self._busy_until - self.sim.now,
                queue=self.name,
            )
        if callback is not None:
            self.sim.schedule_at(finish, callback)
        return finish

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a new submission."""
        return max(0.0, self._busy_until - self.sim.now)

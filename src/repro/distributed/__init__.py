"""Distributed RL training strategies over the simulated cluster."""

from .asynchronous import AsyncISwitch, AsyncParameterServer
from .collectives import (
    CollectiveHandle,
    ISwitchStream,
    PsGather,
    PsScatter,
    RingExchange,
    RoundBarrier,
)
from .config import ExperimentConfig
from .metrics import BusyQueue, IterationBreakdown, split_compute_time
from .registry import (
    StrategySpec,
    get_strategy,
    register_strategy,
    strategy_names,
    strategy_specs,
    unregister_strategy,
)
from .results import TrainingResult
from .runner import (
    ASYNC_STRATEGIES,
    SYNC_STRATEGIES,
    build_cluster,
    make_algorithm,
    run,
    run_async,
    run_sync,
)
from .sharded import ShardedParameterServer
from .sync import (
    HalvingDoublingAllReduce,
    RingAllReduce,
    SyncISwitch,
    SyncParameterServer,
    SyncStrategy,
    make_plan,
)
from .transport import VECTOR_PORT, VectorChunk, VectorReceiver, send_vector
from .worker import ComputeModel, SimWorker

__all__ = [
    "run",
    "ExperimentConfig",
    "run_sync",
    "run_async",
    "build_cluster",
    "make_algorithm",
    "SYNC_STRATEGIES",
    "ASYNC_STRATEGIES",
    "StrategySpec",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "strategy_specs",
    "unregister_strategy",
    "TrainingResult",
    "SyncStrategy",
    "SyncParameterServer",
    "RingAllReduce",
    "HalvingDoublingAllReduce",
    "ShardedParameterServer",
    "SyncISwitch",
    "AsyncParameterServer",
    "AsyncISwitch",
    "make_plan",
    "CollectiveHandle",
    "RoundBarrier",
    "PsGather",
    "PsScatter",
    "RingExchange",
    "ISwitchStream",
    "SimWorker",
    "ComputeModel",
    "IterationBreakdown",
    "BusyQueue",
    "split_compute_time",
    "VectorReceiver",
    "VectorChunk",
    "send_vector",
    "VECTOR_PORT",
]

"""Simulated training workers: an RL algorithm bound to a simulated host.

A :class:`SimWorker` pairs the *real* numerical training state (a
:class:`repro.rl.base.Algorithm`) with the *modelled* iteration timing (a
:class:`ComputeModel` drawing LGC/LWU durations from the calibrated
workload profile).  Strategies drive workers purely through simulator
events; the NumPy math executes inside those events, so gradient values
and simulated timestamps stay consistent.
"""

from __future__ import annotations

import numpy as np

from ..netsim.node import Host
from ..netsim.trace import TimeSeries
from ..rl.base import Algorithm
from ..workloads.profiles import WorkloadProfile
from .metrics import IterationBreakdown

__all__ = ["ComputeModel", "SimWorker"]


class ComputeModel:
    """Samples per-iteration LGC/LWU durations for one worker.

    Durations are the profile's calibrated means with small lognormal
    jitter (different per worker via the seed), which is what produces
    straggler effects under synchronous barriers.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        #: Straggler knob: LGC durations are multiplied by this factor.
        #: 1.0 (the default) is exact in IEEE arithmetic, so un-faulted
        #: runs are bit-identical to builds without the knob.  The fault
        #: injector raises it for timed ``straggler`` windows.
        self.slowdown = 1.0

    def lgc_duration(self) -> float:
        jitter = self.profile.compute_jitter
        if jitter <= 0:
            return self.profile.compute_time * self.slowdown
        return float(
            self.profile.compute_time
            * self.rng.lognormal(0.0, jitter)
            * self.slowdown
        )

    def lwu_duration(self) -> float:
        return self.profile.weight_update_time


class SimWorker:
    """One training worker: host + algorithm + timing model + accounting."""

    def __init__(
        self,
        index: int,
        host: Host,
        algorithm: Algorithm,
        compute: ComputeModel,
    ) -> None:
        self.index = index
        self.host = host
        self.algorithm = algorithm
        self.compute = compute
        self.iterations_done = 0
        self.breakdown = IterationBreakdown()
        #: (sim time, final-average episode reward) samples.
        self.reward_curve = TimeSeries(name=f"worker{index}")
        self._episodes_seen = 0

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.host.sim

    def record_reward_sample(self) -> None:
        """Record a (time, avg reward) point when new episodes completed."""
        completed = len(self.algorithm.episode_rewards)
        if completed > self._episodes_seen and completed >= 1:
            self._episodes_seen = completed
            self.reward_curve.record(
                self.sim.now, self.algorithm.final_average_reward()
            )

    def finish_iteration(self) -> None:
        self.iterations_done += 1
        self.breakdown.finish_iteration()
        self.record_reward_sample()

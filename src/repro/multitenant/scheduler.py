"""Aggregation-slot arbitration: which queued job gets SRAM next.

The fabric admits jobs one at a time; when slots free up, the scheduler's
*policy* names the next candidate.  If the candidate does not fit, the
fabric stops — head-of-line blocking is deliberate, so a large job cannot
be starved forever by a stream of small ones slipping past it.

Policies implement one method, so new arbitration schemes drop in
without touching the fabric:

* :class:`FifoPolicy` — strict arrival order.
* :class:`FairSharePolicy` — the tenant with the fewest admitted jobs so
  far goes first (ties broken FIFO), giving every tenant an equal share
  of admissions under contention.
* :class:`StrictPriorityPolicy` — highest :attr:`JobSpec.priority` first
  (ties broken FIFO).
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Dict, List, Optional, Sequence

from .spec import JobHandle

__all__ = [
    "SchedulerPolicy",
    "FifoPolicy",
    "FairSharePolicy",
    "StrictPriorityPolicy",
    "SlotScheduler",
    "make_policy",
    "POLICIES",
]


class SchedulerPolicy(abc.ABC):
    """Pick the next admission candidate from the queue."""

    name = "base"

    @abc.abstractmethod
    def select(
        self, queued: Sequence[JobHandle], served: Dict[str, int]
    ) -> JobHandle:
        """Return the handle to try next; ``queued`` is in arrival order
        and never empty.  ``served`` counts admissions per tenant."""


class FifoPolicy(SchedulerPolicy):
    name = "fifo"

    def select(self, queued, served) -> JobHandle:
        return queued[0]


class FairSharePolicy(SchedulerPolicy):
    name = "fair"

    def select(self, queued, served) -> JobHandle:
        # min() is stable: among tenants with equal admissions the
        # earliest-queued job wins, so the tie-break is FIFO.
        return min(queued, key=lambda h: served.get(h.spec.tenant, 0))


class StrictPriorityPolicy(SchedulerPolicy):
    name = "priority"

    def select(self, queued, served) -> JobHandle:
        return max(queued, key=lambda h: h.spec.priority)


POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, FairSharePolicy, StrictPriorityPolicy)
}


def make_policy(policy) -> SchedulerPolicy:
    """Resolve a policy instance, class, or name ('fifo'/'fair'/'priority')."""
    if isinstance(policy, SchedulerPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulerPolicy):
        return policy()
    cls = POLICIES.get(str(policy).lower())
    if cls is None:
        raise KeyError(
            f"unknown scheduler policy {policy!r}; choose {sorted(POLICIES)}"
        )
    return cls()


class SlotScheduler:
    """The queue plus per-tenant admission accounting behind one policy."""

    def __init__(self, policy="fifo") -> None:
        self.policy = make_policy(policy)
        self._queue: List[JobHandle] = []
        self.served: Counter = Counter()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued(self) -> List[JobHandle]:
        return list(self._queue)

    def enqueue(self, handle: JobHandle) -> None:
        self._queue.append(handle)

    def next_candidate(self) -> Optional[JobHandle]:
        if not self._queue:
            return None
        return self.policy.select(tuple(self._queue), dict(self.served))

    def admit(self, handle: JobHandle) -> None:
        """Record that ``handle`` was admitted (removes it from the queue)."""
        self._queue.remove(handle)
        self.served[handle.spec.tenant] += 1

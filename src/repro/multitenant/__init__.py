"""Multi-tenant job management over a shared in-switch aggregation tree.

The paper evaluates one training job owning the whole switch hierarchy; a
production deployment multiplexes *tens* of jobs over the same racks.
This package adds the control plane for that:

* :class:`~repro.multitenant.fabric.SwitchFabric` — a shared two-layer
  switch tree (root + ToRs) with one simulator; ``submit(JobSpec)``
  returns a :class:`~repro.multitenant.spec.JobHandle`, ``run()`` drains
  every admitted job to completion.
* :class:`~repro.multitenant.admission.AdmissionController` — models the
  accelerator SRAM (engines × segments per engine) on every switch and
  rejects or queues jobs that would oversubscribe it.
* :mod:`~repro.multitenant.scheduler` — the arbitration policies (FIFO,
  fair-share, strict-priority) behind a common
  :class:`~repro.multitenant.scheduler.SchedulerPolicy` interface.
* :mod:`~repro.multitenant.soak` — the load generator behind
  ``repro jobs soak``.

Per-job isolation is exact: each job gets its own
:class:`~repro.core.jobs.JobState` (engine + membership) on every switch
it touches, engines sum in canonical order, and job ids ride the wire
protocol end to end — so a job's final weights are bit-identical whether
it runs alone or alongside dozens of tenants.
"""

from .admission import AdmissionController, AdmissionDecision
from .fabric import Cluster, SwitchFabric
from .scheduler import (
    FairSharePolicy,
    FifoPolicy,
    SchedulerPolicy,
    SlotScheduler,
    StrictPriorityPolicy,
    make_policy,
)
from .soak import SoakReport, generate_jobs, run_soak
from .spec import JobHandle, JobSpec, JobStatus

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Cluster",
    "SwitchFabric",
    "SchedulerPolicy",
    "FifoPolicy",
    "FairSharePolicy",
    "StrictPriorityPolicy",
    "SlotScheduler",
    "make_policy",
    "JobSpec",
    "JobStatus",
    "JobHandle",
    "SoakReport",
    "generate_jobs",
    "run_soak",
]

"""Job descriptions and handles for the multi-tenant fabric.

A :class:`JobSpec` is everything a tenant supplies; a :class:`JobHandle`
is the fabric's receipt — it tracks the job through admission, execution,
and completion, and exposes the :class:`~repro.distributed.results.TrainingResult`
once the job finished.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["JobSpec", "JobStatus", "JobHandle", "WIRE_MAX_JOB_ID"]

#: The wire protocol carries the job id in 7 reserved bits (see
#: :mod:`repro.core.protocol`); fabric-assigned ids must fit it.
WIRE_MAX_JOB_ID = 127


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"  # submitted, arrival time not reached yet
    QUEUED = "queued"  # arrived, waiting for switch SRAM
    RUNNING = "running"  # admitted; aggregation slots reserved
    COMPLETED = "completed"
    REJECTED = "rejected"  # can never fit the modeled SRAM
    FAILED = "failed"


@dataclass
class JobSpec:
    """One tenant's training-job request."""

    name: str
    workload: str = "synth"
    n_workers: int = 2
    iterations: int = 4
    seed: int = 0
    #: Only consulted by the strict-priority policy (higher runs first).
    priority: int = 0
    tenant: str = "default"
    #: Simulated time the job arrives at the fabric.
    arrival_time: float = 0.0
    #: Explicit job id (1..127); ``None`` lets the fabric assign one.
    job_id: Optional[int] = None
    algorithm_overrides: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job needs a non-empty name")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.arrival_time < 0:
            raise ValueError(
                f"arrival_time must be >= 0, got {self.arrival_time}"
            )
        if self.job_id is not None and not 1 <= self.job_id <= WIRE_MAX_JOB_ID:
            raise ValueError(
                f"job_id must be in [1, {WIRE_MAX_JOB_ID}], got {self.job_id}"
            )


@dataclass
class JobHandle:
    """The fabric's view of one submitted job."""

    spec: JobSpec
    job_id: int
    status: JobStatus = JobStatus.PENDING
    #: Aggregation-SRAM segments this job holds on each touched switch.
    footprint: int = 0
    #: Rack (ToR) indices the job's workers are striped across.
    racks: List[int] = field(default_factory=list)
    submitted_at: float = 0.0
    queued_at: Optional[float] = None
    admitted_at: Optional[float] = None
    completed_at: Optional[float] = None
    reject_reason: Optional[str] = None
    result: Optional[object] = None  # TrainingResult when COMPLETED

    @property
    def wait_time(self) -> Optional[float]:
        """Seconds of simulated time spent queued before admission."""
        if self.queued_at is None or self.admitted_at is None:
            return None
        return self.admitted_at - self.queued_at

    @property
    def run_time(self) -> Optional[float]:
        if self.admitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.admitted_at

    def summary(self) -> dict:
        """A JSON-friendly snapshot (used by ``repro jobs status``)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "tenant": self.spec.tenant,
            "workload": self.spec.workload,
            "n_workers": self.spec.n_workers,
            "iterations": self.spec.iterations,
            "priority": self.spec.priority,
            "status": self.status.value,
            "footprint": self.footprint,
            "racks": list(self.racks),
            "submitted_at": self.submitted_at,
            "queued_at": self.queued_at,
            "admitted_at": self.admitted_at,
            "completed_at": self.completed_at,
            "wait_time": self.wait_time,
            "run_time": self.run_time,
            "reject_reason": self.reject_reason,
        }

"""Soak / load-generator mode: many small jobs hammering one fabric.

``repro jobs soak`` drives this: a seeded stream of synthetic jobs with
mixed model sizes and worker counts arrives over a short window, the
fabric schedules them through shared switch SRAM, and the
:class:`SoakReport` summarizes what happened — peak concurrency, queue
waits, and the hard invariant that *every* admissible job completed.

Synthetic workloads keep the numerics cheap (the point is scheduler and
switch-state churn, not RL training), so a 32-job soak runs in well under
a minute of wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .fabric import SwitchFabric
from .spec import JobSpec, JobStatus

__all__ = ["SoakReport", "generate_jobs", "run_soak"]

#: Mixed synthetic model sizes (floats): 1, 2, and 4 wire chunks.
DEFAULT_PARAM_CHOICES = (366, 732, 1464)
DEFAULT_WORKER_CHOICES = (2, 3)


@dataclass
class SoakReport:
    """What one soak run did."""

    n_jobs: int
    policy: str
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    peak_concurrent: int = 0
    sim_elapsed: float = 0.0
    #: Queue waits (simulated seconds) of jobs that had to wait.
    waits: List[float] = field(default_factory=list)
    tenants: int = 0

    @property
    def queued_jobs(self) -> int:
        return sum(1 for w in self.waits if w > 0)

    @property
    def max_wait(self) -> float:
        return max(self.waits, default=0.0)

    @property
    def ok(self) -> bool:
        """The soak invariant: nothing admissible failed to finish."""
        return self.failed == 0 and self.completed + self.rejected == self.n_jobs

    def summary_lines(self) -> List[str]:
        lines = [
            f"soak: {self.n_jobs} jobs over {self.tenants} tenants "
            f"({self.policy} policy)",
            f"  completed:       {self.completed}",
            f"  rejected:        {self.rejected} (SRAM oversubscription)",
            f"  failed:          {self.failed}",
            f"  peak concurrent: {self.peak_concurrent}",
            f"  queued at least once: {self.queued_jobs} "
            f"(max wait {self.max_wait * 1e3:.2f} ms simulated)",
            f"  simulated time:  {self.sim_elapsed * 1e3:.2f} ms",
            f"  result:          {'OK' if self.ok else 'FAILED'}",
        ]
        return lines


def generate_jobs(
    n_jobs: int,
    seed: int = 0,
    arrival_window: float = 2e-3,
    iterations: int = 3,
    n_tenants: int = 4,
    param_choices: Tuple[int, ...] = DEFAULT_PARAM_CHOICES,
    worker_choices: Tuple[int, ...] = DEFAULT_WORKER_CHOICES,
) -> List[JobSpec]:
    """A reproducible stream of mixed-size synthetic jobs."""
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    rng = random.Random(seed)
    specs = []
    for index in range(n_jobs):
        n_params = rng.choice(param_choices)
        specs.append(
            JobSpec(
                name=f"soak-{index}",
                workload="synth",
                n_workers=rng.choice(worker_choices),
                iterations=iterations,
                seed=seed + index,
                priority=rng.randrange(3),
                tenant=f"tenant{index % n_tenants}",
                arrival_time=rng.uniform(0.0, arrival_window),
                algorithm_overrides={"n_params": n_params},
            )
        )
    return specs


def run_soak(
    n_jobs: int = 32,
    seed: int = 0,
    policy: str = "fair",
    n_racks: int = 4,
    sram_engines: int = 8,
    sram_segments_per_engine: int = 32,
    arrival_window: float = 2e-3,
    iterations: int = 3,
    n_tenants: int = 4,
    telemetry: bool = True,
    specs: Optional[List[JobSpec]] = None,
    transport: str = "packet",
    scheduler: str = "heap",
) -> Tuple[SwitchFabric, SoakReport]:
    """Generate, submit, and drain a soak load; return fabric + report."""
    fabric = SwitchFabric(
        n_racks=n_racks,
        sram_engines=sram_engines,
        sram_segments_per_engine=sram_segments_per_engine,
        policy=policy,
        telemetry=telemetry,
        transport=transport,
        scheduler=scheduler,
    )
    if specs is None:
        specs = generate_jobs(
            n_jobs,
            seed=seed,
            arrival_window=arrival_window,
            iterations=iterations,
            n_tenants=n_tenants,
        )
    for spec in specs:
        fabric.submit(spec)
    handles = fabric.run()
    report = SoakReport(
        n_jobs=len(specs),
        policy=fabric.scheduler.policy.name,
        peak_concurrent=fabric.peak_concurrent,
        sim_elapsed=fabric.sim.now,
        tenants=len({spec.tenant for spec in specs}),
    )
    for handle in handles.values():
        if handle.status is JobStatus.COMPLETED:
            report.completed += 1
            wait = handle.wait_time
            report.waits.append(wait if wait is not None else 0.0)
        elif handle.status is JobStatus.REJECTED:
            report.rejected += 1
        else:
            report.failed += 1
    return fabric, report

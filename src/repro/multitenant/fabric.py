"""The shared switch tree: tens of training jobs over one fabric.

:class:`SwitchFabric` owns one discrete-event simulator, one root iSwitch,
and ``n_racks`` ToR iSwitches.  Tenants ``submit()`` :class:`JobSpec`\\ s;
each admitted job gets

* a fresh set of worker hosts (``j<id>w<i>``) striped across the racks,
* its own per-switch :class:`~repro.core.jobs.JobState` (engine +
  membership + SetH) keyed by a wire-carried job id,
* a private :class:`~repro.distributed.sync.SyncISwitch` runner whose
  numerics are exactly the single-tenant strategy's — same algorithm
  seeds, same compute-model seeds, same ``sum/N`` update rule.

Engines run canonical-order summation, so a job's aggregate is a pure
function of its contributions — independent of how other tenants' traffic
perturbs packet arrival order on the shared links.  That is what makes
the isolation guarantee *bit-exact*: the same spec run alone and run
among dozens of tenants produces identical final weights.

Admission control (:mod:`.admission`) books each job's segment footprint
against the modeled switch SRAM; the scheduler (:mod:`.scheduler`)
arbitrates which queued job gets freed slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.hierarchy import make_iswitch_factory
from ..distributed.collectives.iswitch import make_plan
from ..distributed.results import TrainingResult
from ..distributed.runner import make_algorithm
from ..distributed.sync import SyncISwitch
from ..distributed.worker import ComputeModel, SimWorker
from ..netsim.events import make_simulator
from ..netsim.link import GBPS, Link
from ..netsim.node import Host
from ..netsim.topology import Network
from ..telemetry.hub import TelemetryHub
from ..workloads.profiles import get_profile
from .admission import AdmissionController, AdmissionDecision
from .scheduler import SlotScheduler
from .spec import JobHandle, JobSpec, JobStatus, WIRE_MAX_JOB_ID

__all__ = ["SwitchFabric", "Cluster"]


class _JobRunner(SyncISwitch):
    """A SyncISwitch that can be launched without draining the simulator.

    The single-tenant ``run()`` owns the event loop; on a shared fabric
    many runners coexist, so ``launch()`` only schedules the first
    iterations and the fabric drains the simulator once for everyone.
    Completion is detected at the final round's barrier release.
    """

    def __init__(self, *args, on_complete=None, on_round=None, **kwargs):
        self._on_complete = on_complete
        self._on_round = on_round
        self._launched_at: Optional[float] = None
        super().__init__(*args, **kwargs)

    def launch(self, n_iterations: int) -> TrainingResult:
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        result = TrainingResult(
            strategy=self.name,
            workload=self.profile.name,
            n_workers=len(self.workers),
            iterations=n_iterations,
            elapsed=0.0,
            workers=self.workers,
        )
        self._result = result
        self._launched_at = self.sim.now
        for worker in self.workers:
            self._start_iteration(worker, 0)
        return result

    def _round_gradients_release(self, iteration: int) -> None:
        super()._round_gradients_release(iteration)
        if self._on_round is not None:
            self._on_round(iteration)
        if iteration + 1 == self.n_iterations:
            self._finalize()

    def _finalize(self) -> None:
        result = self._result
        result.elapsed = self.sim.now - self._launched_at
        for worker in self.workers:
            result.breakdown.totals = {
                k: result.breakdown.totals[k] + worker.breakdown.totals[k]
                for k in result.breakdown.totals
            }
            result.breakdown.iterations += worker.breakdown.iterations
        if self._on_complete is not None:
            self._on_complete()


class SwitchFabric:
    """A two-layer iSwitch tree shared by many concurrent training jobs."""

    def __init__(
        self,
        n_racks: int = 4,
        sram_engines: int = 8,
        sram_segments_per_engine: int = 32,
        policy="fifo",
        telemetry: bool = True,
        host_bandwidth: float = 10 * GBPS,
        uplink_bandwidth: float = 40 * GBPS,
        transport: str = "packet",
        scheduler: str = "heap",
    ) -> None:
        if n_racks < 1:
            raise ValueError(f"n_racks must be >= 1, got {n_racks}")
        self.hub: Optional[TelemetryHub] = TelemetryHub() if telemetry else None
        self.sim = make_simulator(scheduler, telemetry=self.hub)
        self.sim.batch_transport = transport == "train"
        self.host_bandwidth = host_bandwidth
        # Canonical-order engines: the bit-exact isolation guarantee.
        factory = make_iswitch_factory(canonical=True)
        self.root = factory(self.sim, "root")
        self.tors = []
        self.links: List[Link] = []
        #: Root-side end of each rack uplink, for routing host names up top.
        self._uplink_at_root: Dict[str, object] = {}
        for rack in range(n_racks):
            tor = factory(self.sim, f"tor{rack}")
            uplink = Link(
                self.sim,
                bandwidth=uplink_bandwidth,
                name=f"{tor.name}<->{self.root.name}",
            )
            uplink.attach(tor, self.root)
            tor.set_default_route(uplink.ends[0])
            self.links.append(uplink)
            self._uplink_at_root[tor.name] = uplink.ends[1]
            self.tors.append(tor)
        self.switches = list(self.tors) + [self.root]
        self.admission = AdmissionController(
            (s.name for s in self.switches),
            engines=sram_engines,
            segments_per_engine=sram_segments_per_engine,
        )
        self.scheduler = SlotScheduler(policy)
        self.handles: Dict[int, JobHandle] = {}
        self._runners: Dict[int, _JobRunner] = {}
        self._next_job_id = 1
        self.running = 0
        self.peak_concurrent = 0

    # ------------------------------------------------------------------
    # Submission and admission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Register a job; it arrives (and tries admission) at
        ``spec.arrival_time`` of simulated time."""
        job_id = self._assign_job_id(spec)
        profile = get_profile(spec.workload)
        footprint = self._footprint(spec, profile)
        handle = JobHandle(
            spec=spec,
            job_id=job_id,
            footprint=footprint,
            racks=self._racks_for(job_id, spec.n_workers),
            submitted_at=self.sim.now,
        )
        self.handles[job_id] = handle
        self._telemetry_inc("job.submitted", handle)
        if footprint > self.admission.capacity:
            handle.status = JobStatus.REJECTED
            handle.reject_reason = (
                f"needs {footprint} SRAM segments per switch; the modeled "
                f"accelerator holds {self.admission.capacity} "
                f"({self.admission.engines} engines x "
                f"{self.admission.segments_per_engine} segments)"
            )
            self.admission.rejections += 1
            self._telemetry_inc("job.rejected", handle)
            return handle
        delay = max(spec.arrival_time - self.sim.now, 0.0)
        self.sim.schedule(
            delay, lambda: self._arrive(handle), name=f"job-arrive:{job_id}"
        )
        return handle

    def _assign_job_id(self, spec: JobSpec) -> int:
        if spec.job_id is not None:
            if spec.job_id in self.handles:
                raise ValueError(
                    f"job id {spec.job_id} is already in use by "
                    f"{self.handles[spec.job_id].spec.name!r}"
                )
            return spec.job_id
        while self._next_job_id in self.handles:
            self._next_job_id += 1
        if self._next_job_id > WIRE_MAX_JOB_ID:
            raise RuntimeError(
                f"fabric exhausted the wire job-id space "
                f"(1..{WIRE_MAX_JOB_ID})"
            )
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    def _footprint(self, spec: JobSpec, profile) -> int:
        """Worst-case live SRAM segments: the job's segment-plan chunks."""
        probe = make_algorithm(
            spec.workload,
            seed=spec.seed,
            **(spec.algorithm_overrides or {}),
        )
        plan = make_plan(probe.n_params, profile.model_bytes)
        return plan.n_chunks

    def _racks_for(self, job_id: int, n_workers: int) -> List[int]:
        """Stripe workers across racks, offset by job id to spread load.

        A pure function of (job_id, n_workers, n_racks) — a job lands on
        the same racks whether it runs alone or among other tenants,
        which the bit-identity guarantee depends on.
        """
        n_racks = len(self.tors)
        return [(job_id + i) % n_racks for i in range(n_workers)]

    def _touched_switches(self, handle: JobHandle) -> List:
        tors = sorted(set(handle.racks))
        return [self.tors[r] for r in tors] + [self.root]

    def _arrive(self, handle: JobHandle) -> None:
        handle.status = JobStatus.QUEUED
        handle.queued_at = self.sim.now
        self.scheduler.enqueue(handle)
        self._telemetry_inc("job.queued", handle)
        self._try_admit()

    def _try_admit(self) -> None:
        """Admit queued jobs in policy order until the head doesn't fit.

        Stopping at the first non-fitting candidate (head-of-line
        blocking) keeps large jobs from being starved by small ones.
        """
        while True:
            candidate = self.scheduler.next_candidate()
            if candidate is None:
                return
            switches = self._touched_switches(candidate)
            names = [s.name for s in switches]
            if not self.admission.fits(candidate.footprint, names):
                return
            self.scheduler.admit(candidate)
            self.admission.reserve(candidate.job_id, candidate.footprint, names)
            self._start_job(candidate)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_job(self, handle: JobHandle) -> None:
        spec = handle.spec
        job_id = handle.job_id
        profile = get_profile(spec.workload)
        view = Network(sim=self.sim)
        view.root = self.root
        view.switches = self._touched_switches(handle)
        for index, rack in enumerate(handle.racks):
            tor = self.tors[rack]
            host = Host(self.sim, f"j{job_id}w{index}")
            link = Link(
                self.sim,
                bandwidth=self.host_bandwidth,
                name=f"{host.name}<->{tor.name}",
            )
            link.attach(host, tor)
            tor.add_route(host.name, link.ends[1])
            self.root.add_route(host.name, self._uplink_at_root[tor.name])
            self.links.append(link)
            view.links.append(link)
            view.hosts[host.name] = host
            view.workers.append(host)
            view.tor_of_worker.append(tor)
        workers = []
        for index, host in enumerate(view.workers):
            algorithm = make_algorithm(
                spec.workload,
                seed=spec.seed + index,
                **(spec.algorithm_overrides or {}),
            )
            compute = ComputeModel(profile, seed=spec.seed * 1000 + index)
            workers.append(SimWorker(index, host, algorithm, compute))
        runner = _JobRunner(
            view,
            workers,
            profile,
            job=job_id,
            on_complete=lambda: self._job_complete(handle),
            on_round=lambda it: self._job_round(handle, it),
        )
        self._runners[job_id] = runner
        handle.status = JobStatus.RUNNING
        handle.admitted_at = self.sim.now
        self.running += 1
        self.peak_concurrent = max(self.peak_concurrent, self.running)
        self._telemetry_inc("job.admitted", handle)
        if self.hub is not None:
            self.hub.set_gauge("job.concurrent", self.running)
        handle.result = runner.launch(spec.iterations)

    def _job_round(self, handle: JobHandle, iteration: int) -> None:
        self._telemetry_inc("job.rounds_completed", handle)

    def _job_complete(self, handle: JobHandle) -> None:
        job_id = handle.job_id
        handle.status = JobStatus.COMPLETED
        handle.completed_at = self.sim.now
        self.running -= 1
        # Tear down the job's per-switch state; the SetH slots and engine
        # SRAM go back to the pool and the next queued job can take them.
        for switch in self._touched_switches(handle):
            switch.jobs.remove(job_id)
        self.admission.release(job_id)
        self._telemetry_inc("job.completed", handle)
        if self.hub is not None:
            self.hub.set_gauge("job.concurrent", self.running)
            self.hub.span_at(
                "job.run",
                handle.admitted_at,
                self.sim.now,
                cat="jobs",
                track=f"job{job_id}",
                job=job_id,
                job_name=handle.spec.name,
                tenant=handle.spec.tenant,
            )
        self._try_admit()

    def _telemetry_inc(self, metric: str, handle: JobHandle) -> None:
        if self.hub is not None:
            self.hub.inc(
                metric,
                1,
                job=handle.job_id,
                job_name=handle.spec.name,
                tenant=handle.spec.tenant,
            )

    # ------------------------------------------------------------------
    def run(self) -> Dict[int, JobHandle]:
        """Drain the simulator: every admissible job runs to completion."""
        self.sim.run()
        stuck = [
            h
            for h in self.handles.values()
            if h.status in (JobStatus.QUEUED, JobStatus.RUNNING)
        ]
        for handle in stuck:
            handle.status = JobStatus.FAILED
            handle.reject_reason = "fabric drained before completion"
        return dict(self.handles)

    def job(self, job_id: int) -> JobHandle:
        return self.handles[job_id]

    def final_weights(self, job_id: int):
        """Worker 0's final weight vector for a completed job."""
        handle = self.handles[job_id]
        if handle.result is None:
            raise RuntimeError(
                f"job {job_id} has no result (status {handle.status.value})"
            )
        return handle.result.workers[0].algorithm.get_weights()

    def status_rows(self) -> List[dict]:
        """All job summaries, for ``repro jobs status`` and tests."""
        return [
            self.handles[job_id].summary() for job_id in sorted(self.handles)
        ]


#: The deployment-facing alias: a fabric plus its jobs is "the cluster".
Cluster = SwitchFabric

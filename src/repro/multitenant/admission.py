"""Admission control against the modeled accelerator SRAM.

The paper's accelerator keeps every in-flight segment's partial sum in
on-chip SRAM, organized as aggregation engines with a fixed number of
segment slots each (§4).  A switch can therefore host at most
``engines × segments_per_engine`` concurrently-live segments across *all*
jobs.  The :class:`AdmissionController` books a job's worst-case segment
footprint (its segment-plan chunk count) on every switch the job touches;
jobs whose footprint can never fit are **rejected** outright, jobs that
merely don't fit *right now* are **queued** until running jobs release
their slots.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Tuple

__all__ = ["AdmissionController", "AdmissionDecision"]


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    QUEUE = "queue"
    REJECT = "reject"


class AdmissionController:
    """Per-switch SRAM slot accounting for the whole fabric."""

    def __init__(
        self,
        switch_names: Iterable[str],
        engines: int = 8,
        segments_per_engine: int = 32,
    ) -> None:
        if engines < 1:
            raise ValueError(f"engines must be >= 1, got {engines}")
        if segments_per_engine < 1:
            raise ValueError(
                f"segments_per_engine must be >= 1, got {segments_per_engine}"
            )
        self.engines = engines
        self.segments_per_engine = segments_per_engine
        #: Live segment slots available on every switch.
        self.capacity = engines * segments_per_engine
        self._used: Dict[str, int] = {name: 0 for name in switch_names}
        self._reservations: Dict[int, Tuple[int, List[str]]] = {}
        self.rejections = 0

    # ------------------------------------------------------------------
    def used(self, switch_name: str) -> int:
        return self._used[switch_name]

    def utilization(self, switch_name: str) -> float:
        return self._used[switch_name] / self.capacity

    def decide(
        self, footprint: int, switch_names: Iterable[str]
    ) -> AdmissionDecision:
        """Classify a request: admit now, queue, or reject forever."""
        if footprint > self.capacity:
            return AdmissionDecision.REJECT
        if self.fits(footprint, switch_names):
            return AdmissionDecision.ADMIT
        return AdmissionDecision.QUEUE

    def fits(self, footprint: int, switch_names: Iterable[str]) -> bool:
        """Whether the footprint fits every named switch *right now*."""
        return all(
            self._used[name] + footprint <= self.capacity
            for name in switch_names
        )

    def reserve(
        self, job_id: int, footprint: int, switch_names: Iterable[str]
    ) -> None:
        names = list(switch_names)
        if job_id in self._reservations:
            raise ValueError(f"job {job_id} already holds a reservation")
        if not self.fits(footprint, names):
            raise RuntimeError(
                f"job {job_id} does not fit ({footprint} segments over "
                f"{names}); call fits() first"
            )
        for name in names:
            self._used[name] += footprint
        self._reservations[job_id] = (footprint, names)

    def release(self, job_id: int) -> bool:
        """Free a job's slots; returns False if it held none."""
        reservation = self._reservations.pop(job_id, None)
        if reservation is None:
            return False
        footprint, names = reservation
        for name in names:
            self._used[name] -= footprint
        return True

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-switch occupancy, for status displays and telemetry."""
        return {
            name: {"used": used, "capacity": self.capacity}
            for name, used in sorted(self._used.items())
        }

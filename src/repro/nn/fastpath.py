"""Global switch between the compute fast path and the legacy reference.

PR 10 rebuilt the compute tier — ring-buffer replay, raw-NumPy inference
forwards, fused loss kernels, flat in-place optimizer updates — and every
piece is proven bit-identical to the code it replaced
(``tests/test_compute_parity.py``, DESIGN.md §13).  The fast path is
therefore **default-on and opt-in-free**.

The legacy path is kept for two jobs only:

* the differential parity suite runs both paths step-for-step and
  asserts bit-identical weights;
* the bench harness times ``*-legacy`` twin scenarios so the fast path's
  speedup is measured, not asserted.

The flag is sampled at *construction* time (``Algorithm.__init__``,
``Optimizer.__init__``, replay-buffer selection), so one training run is
coherently fast or coherently legacy; flipping the flag mid-run affects
only objects built afterwards.  Simulated clusters are built and run
single-threaded, which is what makes a process-global flag sufficient.

``REPRO_COMPUTE=legacy`` in the environment disables the fast path for a
whole process (bench/debug escape hatch).
"""

from __future__ import annotations

import os

__all__ = [
    "compute_fastpath_enabled",
    "use_fast_compute",
    "use_legacy_compute",
]

_ENABLED = [os.environ.get("REPRO_COMPUTE", "fast") != "legacy"]


def compute_fastpath_enabled() -> bool:
    """True when newly built algorithms/optimizers use the fast path."""
    return _ENABLED[0]


class _Toggle:
    """Context manager pinning the flag to ``value`` (re-entrant)."""

    _value: bool

    def __init__(self) -> None:
        self._stack: list = []

    def __enter__(self) -> "_Toggle":
        self._stack.append(_ENABLED[0])
        _ENABLED[0] = self._value
        return self

    def __exit__(self, *exc) -> None:
        _ENABLED[0] = self._stack.pop()


class use_legacy_compute(_Toggle):
    """Build everything inside the block on the legacy reference path."""

    _value = False


class use_fast_compute(_Toggle):
    """Build everything inside the block on the fast path (the default)."""

    _value = True

"""Neural-network modules: parameter containers and MLP building blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["Parameter", "Module", "Linear", "Activation", "Sequential", "mlp"]


class Parameter(Tensor):
    """A tensor that is part of a module's learnable state."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: tracks parameters and submodules by attribute assignment."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, in stable order."""
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Gradient-free forward on a raw array.

        Bit-identical to ``self(Tensor(x)).numpy()`` under ``no_grad``
        but without building tensor objects; layers with closed-form
        forwards (Linear, Activation, Sequential) override this with
        pure-NumPy versions for the compute fast path.
        """
        with no_grad():
            return self.forward(Tensor(np.asarray(x, dtype=np.float64))).numpy()

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"invalid layer shape ({in_features}, {out_features})"
            )
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            name="weight",
        )
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                np.zeros(out_features), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out


class Activation(Module):
    """Elementwise activation by name: relu | tanh | sigmoid."""

    _KINDS = ("relu", "tanh", "sigmoid")

    def __init__(self, kind: str) -> None:
        super().__init__()
        if kind not in self._KINDS:
            raise ValueError(f"unknown activation {kind!r}; choose {self._KINDS}")
        self.kind = kind

    def forward(self, x: Tensor) -> Tensor:
        return getattr(x, self.kind)()

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Same expressions as the Tensor ops' forward halves.
        if self.kind == "relu":
            return x * (x > 0)
        if self.kind == "tanh":
            return np.tanh(x)
        return 1.0 / (1.0 + np.exp(-x))


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for name in self._order:
            out = getattr(self, name).infer(out)
        return out

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


def mlp(
    sizes: Sequence[int],
    activation: str = "relu",
    output_activation: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a multilayer perceptron: ``sizes[0] -> ... -> sizes[-1]``."""
    if len(sizes) < 2:
        raise ValueError(f"need at least input and output sizes, got {sizes}")
    rng = rng or np.random.default_rng()
    modules: List[Module] = []
    for i in range(len(sizes) - 1):
        modules.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        is_last = i == len(sizes) - 2
        if not is_last:
            modules.append(Activation(activation))
        elif output_activation is not None:
            modules.append(Activation(output_activation))
    return Sequential(*modules)

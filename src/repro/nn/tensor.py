"""A small reverse-mode automatic-differentiation engine over NumPy.

This replaces the paper's PyTorch dependency.  A :class:`Tensor` wraps an
``ndarray`` plus an optional gradient and a backward closure; calling
:meth:`Tensor.backward` on a scalar loss walks the recorded tape in
reverse topological order, accumulating ``.grad`` on every leaf created
with ``requires_grad=True``.

Only the operations the four RL algorithms need are implemented, each with
an exact vector-Jacobian product (checked against finite differences in
``tests/test_nn_autograd.py``).  Arrays are float64 internally; gradients
cross the simulated network as float32, matching the paper's "raw
float-point format".
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "concat", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling tape recording (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[0]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


TensorLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """An autograd-tracked NumPy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make ndarray defer to our __radd__ etc.

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and is_grad_enabled()
        self._backward = _backward
        self._parents = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The raw array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", requires_grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: TensorLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _backward=backward, _parents=parents)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (recursion-free: policy nets
        # chain hundreds of ops per iteration).
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def gather(self, indices: np.ndarray) -> "Tensor":
        """Select one element per row: ``out[i] = self[i, indices[i]]``.

        Used for Q(s, a) lookups and per-action log-probabilities.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.data.ndim != 2 or indices.ndim != 1:
            raise ValueError("gather expects a 2-D tensor and 1-D indices")
        rows = np.arange(self.data.shape[0])
        out_data = self.data[rows, indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, (rows, indices), grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (numerically stable, fused VJPs)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad - softmax * grad.sum(axis=axis, keepdims=True)
                )

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (e.g. DDPG critic's [s, a])."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _backward=backward, _parents=tensors)

"""Loss functions and small tensor utilities used by the RL algorithms.

``mse_loss`` / ``huber_loss`` are the composed-primitive reference
implementations (a chain of Tensor ops, each with its own node and
intermediate arrays).  ``fused_mse_loss`` / ``fused_huber_loss`` are the
PR 10 fast-path versions: one graph node whose forward and backward are
closed-form NumPy expressions replicating the composed graph's exact
IEEE-754 operation order — including the quirk that the composed
``q*q`` term contributes ``fl(g·q)/2`` twice, which sums exactly to
``fl(g·q)`` because halving/doubling are lossless in binary floating
point.  ``tests/test_compute_parity.py`` asserts loss values and
accumulated gradients are bit-identical; the derivation is written out
in DESIGN.md §13.
"""

from __future__ import annotations

import numpy as np

from .layers import Activation, Linear, Sequential
from .tensor import Tensor

__all__ = [
    "mse_loss",
    "huber_loss",
    "fused_mse_loss",
    "fused_huber_loss",
    "fused_qnet_grad",
    "td_targets",
    "nll_from_logits",
    "entropy_from_logits",
]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, the classic DQN TD loss.

    Quadratic within ``delta`` of the target, linear outside, built from
    differentiable primitives:

        0.5 * clip(|d|, 0, delta)^2 + delta * (|d| - clip(|d|, 0, delta))
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    abs_diff = (prediction - target).abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (0.5 * quadratic * quadratic + delta * linear).mean()


def fused_mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """One-node MSE, bit-identical to ``mse_loss(prediction, Tensor(target))``.

    The composed graph accumulates ``diff``'s gradient twice (both
    parents of ``diff * diff`` are the same tensor), each contribution
    ``fl(g·d)`` — so the fused backward is exactly ``2·fl(g·d)``
    (doubling is lossless).
    """
    target = np.asarray(target, dtype=np.float64)
    diff = prediction.data - target
    count = diff.size
    inv_count = 1.0 / count
    out_data = np.asarray(diff * diff).sum() * inv_count

    def backward(grad: np.ndarray) -> None:
        if prediction.requires_grad:
            g = grad * inv_count
            prediction._accumulate(2.0 * (g * diff))

    return prediction._make(np.asarray(out_data), (prediction,), backward)


def fused_huber_loss(
    prediction: Tensor, target: np.ndarray, delta: float = 1.0
) -> Tensor:
    """One-node Huber, bit-identical to ``huber_loss(prediction, Tensor(target))``.

    Forward mirrors the composed expression order; backward replays the
    composed graph's reverse topological order in closed form:

        g   = fl(grad / n)
        q'  = fl(g·q) - fl(g·delta)        # two half-contributions + (-delta term)
        |d|'= fl(g·delta) + fl(q'·mask)    # linear term, then clip mask
        d'  = |d|'·sign(d)
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    target = np.asarray(target, dtype=np.float64)
    diff = prediction.data - target
    sign = np.sign(diff)
    abs_diff = np.abs(diff)
    quadratic = np.clip(abs_diff, 0.0, delta)
    mask = (abs_diff >= 0.0) & (abs_diff <= delta)
    linear = abs_diff - quadratic
    elems = 0.5 * quadratic * quadratic + delta * linear
    count = elems.size
    inv_count = 1.0 / count
    out_data = elems.sum() * inv_count

    def backward(grad: np.ndarray) -> None:
        if prediction.requires_grad:
            g = grad * inv_count
            g_quad = g * quadratic
            g_delta = g * delta
            quad_grad = g_quad - g_delta
            abs_grad = g_delta + quad_grad * mask
            prediction._accumulate(abs_grad * sign)

    return prediction._make(np.asarray(out_data), (prediction,), backward)


def fused_qnet_grad(
    q_net: Sequential,
    states: np.ndarray,
    actions: np.ndarray,
    targets: np.ndarray,
    delta: float = 1.0,
) -> float:
    """Fused forward + backward for DQN's whole trained graph.

    Computes ``huber(gather(q_net(states), actions), targets)`` for a
    ``Sequential`` of Linear/Activation layers and writes the parameter
    gradients straight into the ``.grad`` slots — no tape, no per-op
    Tensor nodes.  Every expression mirrors the corresponding backward
    closure in ``tensor.py`` op for op:

    * Linear:  ``W' = xᵀ·g``, ``b' = g.sum(axis=0)`` (the exact
      ``_unbroadcast`` reduction for a ``(B, n) -> (n,)`` bias), input
      ``g @ Wᵀ``; the first layer's input gradient is skipped, exactly
      as the tape skips it for a ``requires_grad=False`` input.
    * relu / tanh / sigmoid:  ``g·mask`` / ``g·(1 − out²)`` /
      ``g·out·(1 − out)``, caching the same forward values the tape
      closures capture.
    * gather:  ``np.add.at(zeros_like(q), (rows, a), g)``.
    * Huber:  the ``fused_huber_loss`` closed form, seeded at 1.

    Because each expression is the same IEEE-754 operation sequence the
    graph path executes, the resulting gradients are bit-identical
    (asserted by ``tests/test_compute_parity.py``).  Gradients are
    *assigned* (fresh arrays), matching ``_accumulate``'s copy-on-None
    after the ``zero_grad()`` that precedes every gradient computation.
    Returns the scalar loss value.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    x = np.asarray(states, dtype=np.float64)
    steps = []  # (layer, cache) in forward order
    for layer in q_net:
        if isinstance(layer, Linear):
            steps.append((layer, x))
            x = x @ layer.weight.data
            if layer.bias is not None:
                x = x + layer.bias.data
        elif isinstance(layer, Activation):
            if layer.kind == "relu":
                act_mask = x > 0
                x = x * act_mask
                steps.append((layer, act_mask))
            elif layer.kind == "tanh":
                x = np.tanh(x)
                steps.append((layer, x))
            else:
                x = 1.0 / (1.0 + np.exp(-x))
                steps.append((layer, x))
        else:
            raise TypeError(
                f"fused_qnet_grad supports Linear/Activation only, got {layer!r}"
            )

    indices = np.asarray(actions, dtype=np.int64)
    rows = np.arange(x.shape[0])
    chosen = x[rows, indices]
    target = np.asarray(targets, dtype=np.float64)
    diff = chosen - target
    sign = np.sign(diff)
    abs_diff = np.abs(diff)
    quadratic = np.clip(abs_diff, 0.0, delta)
    mask = (abs_diff >= 0.0) & (abs_diff <= delta)
    linear = abs_diff - quadratic
    elems = 0.5 * quadratic * quadratic + delta * linear
    inv_count = 1.0 / elems.size
    loss = elems.sum() * inv_count

    # Huber backward at seed 1 (Tensor.backward seeds np.ones_like).
    g_quad = inv_count * quadratic
    g_delta = inv_count * delta
    quad_grad = g_quad - g_delta
    abs_grad = g_delta + quad_grad * mask
    d_chosen = abs_grad * sign

    grad = np.zeros_like(x)
    # Rows are unique, so scattering into zeros by assignment is the same
    # value-for-value as the tape's ``np.add.at`` (0 + v == v), minus the
    # slow ufunc.at path.
    grad[rows, indices] = d_chosen
    first = steps[0][0]
    for layer, cache in reversed(steps):
        if isinstance(layer, Linear):
            if layer.bias is not None:
                layer.bias.grad = grad.sum(axis=0)
            layer.weight.grad = cache.swapaxes(-1, -2) @ grad
            if layer is not first:
                grad = grad @ layer.weight.data.swapaxes(-1, -2)
        elif layer.kind == "relu":
            grad = grad * cache
        elif layer.kind == "tanh":
            grad = grad * (1.0 - cache**2)
        else:
            grad = grad * cache * (1.0 - cache)
    return float(loss)


def td_targets(
    rewards: np.ndarray,
    bootstrap: np.ndarray,
    dones: np.ndarray,
    discount: float,
) -> np.ndarray:
    """The TD(n) target vector ``r + gamma^n * max_a' Q(s', a') * (1 - done)``."""
    return rewards + discount * bootstrap * (1.0 - dones)


def nll_from_logits(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Per-sample negative log-likelihood of ``actions`` under ``logits``.

    Returns a vector (one value per row); callers weight it by advantages
    (A2C/PPO) or average it.
    """
    return -logits.log_softmax(axis=-1).gather(actions)


def entropy_from_logits(logits: Tensor) -> Tensor:
    """Mean policy entropy, the standard exploration bonus term."""
    log_probs = logits.log_softmax(axis=-1)
    probs = log_probs.exp()
    return -(probs * log_probs).sum(axis=-1).mean()

"""Loss functions and small tensor utilities used by the RL algorithms."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "huber_loss", "nll_from_logits", "entropy_from_logits"]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, the classic DQN TD loss.

    Quadratic within ``delta`` of the target, linear outside, built from
    differentiable primitives:

        0.5 * clip(|d|, 0, delta)^2 + delta * (|d| - clip(|d|, 0, delta))
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    abs_diff = (prediction - target).abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (0.5 * quadratic * quadratic + delta * linear).mean()


def nll_from_logits(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Per-sample negative log-likelihood of ``actions`` under ``logits``.

    Returns a vector (one value per row); callers weight it by advantages
    (A2C/PPO) or average it.
    """
    return -logits.log_softmax(axis=-1).gather(actions)


def entropy_from_logits(logits: Tensor) -> Tensor:
    """Mean policy entropy, the standard exploration bonus term."""
    log_probs = logits.log_softmax(axis=-1)
    probs = log_probs.exp()
    return -(probs * log_probs).sum(axis=-1).mean()

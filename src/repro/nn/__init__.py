"""NumPy reverse-mode autograd, MLP layers, optimizers and serialization —
the substrate replacing the paper's PyTorch dependency.
"""

from .checkpoint import load_algorithm, load_model, save_algorithm, save_model
from .functional import entropy_from_logits, huber_loss, mse_loss, nll_from_logits
from .layers import Activation, Linear, Module, Parameter, Sequential, mlp
from .optim import SGD, Adam, Optimizer, RMSProp
from .serialize import (
    flatten_grads,
    flatten_params,
    load_flat_grads,
    load_flat_params,
    model_wire_bytes,
    param_vector_size,
)
from .tensor import Tensor, concat, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "Parameter",
    "Module",
    "Linear",
    "Activation",
    "Sequential",
    "mlp",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "mse_loss",
    "huber_loss",
    "nll_from_logits",
    "entropy_from_logits",
    "flatten_params",
    "load_flat_params",
    "flatten_grads",
    "load_flat_grads",
    "param_vector_size",
    "model_wire_bytes",
    "save_model",
    "load_model",
    "save_algorithm",
    "load_algorithm",
]

"""NumPy reverse-mode autograd, MLP layers, optimizers and serialization —
the substrate replacing the paper's PyTorch dependency.
"""

from .checkpoint import load_algorithm, load_model, save_algorithm, save_model
from .fastpath import compute_fastpath_enabled, use_fast_compute, use_legacy_compute
from .functional import (
    entropy_from_logits,
    fused_huber_loss,
    fused_mse_loss,
    fused_qnet_grad,
    huber_loss,
    mse_loss,
    nll_from_logits,
    td_targets,
)
from .layers import Activation, Linear, Module, Parameter, Sequential, mlp
from .optim import SGD, Adam, Optimizer, RMSProp
from .serialize import (
    flatten_grads,
    flatten_grads_into,
    flatten_params,
    load_flat_grads,
    load_flat_params,
    model_wire_bytes,
    param_vector_size,
)
from .tensor import Tensor, concat, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "Parameter",
    "Module",
    "Linear",
    "Activation",
    "Sequential",
    "mlp",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "mse_loss",
    "huber_loss",
    "fused_mse_loss",
    "fused_huber_loss",
    "fused_qnet_grad",
    "td_targets",
    "nll_from_logits",
    "entropy_from_logits",
    "compute_fastpath_enabled",
    "use_fast_compute",
    "use_legacy_compute",
    "flatten_params",
    "load_flat_params",
    "flatten_grads",
    "flatten_grads_into",
    "load_flat_grads",
    "param_vector_size",
    "model_wire_bytes",
    "save_model",
    "load_model",
    "save_algorithm",
    "load_algorithm",
]

"""Flattening model state to/from the float32 vectors that cross the wire.

The distributed strategies exchange a model's parameters or gradients as a
single flat float32 vector — exactly the "gradient vector" the paper's
switch aggregates.  Round order follows ``Module.parameters()``, which is
deterministic (attribute-assignment order), so every worker agrees on the
layout without negotiation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Module, Parameter

__all__ = [
    "flatten_params",
    "load_flat_params",
    "flatten_grads",
    "flatten_grads_into",
    "load_flat_grads",
    "param_vector_size",
    "model_wire_bytes",
]


def param_vector_size(module: Module) -> int:
    """Number of scalar parameters in the module."""
    return module.n_parameters


def model_wire_bytes(module: Module) -> int:
    """Bytes of the float32 gradient vector this model ships per round."""
    return module.n_parameters * 4


def flatten_params(module: Module) -> np.ndarray:
    """Concatenate all parameters into one float32 vector."""
    return np.concatenate(
        [p.data.ravel() for p in module.parameters()]
    ).astype(np.float32)


def load_flat_params(module: Module, vector: np.ndarray) -> None:
    """Overwrite the module's parameters from a flat vector (any float dtype)."""
    _scatter(module.parameters(), vector, into_grad=False)


def flatten_grads(module: Module) -> np.ndarray:
    """Concatenate all gradients into one float32 vector.

    Parameters that received no gradient contribute zeros, so the vector
    layout is always identical across iterations and workers.
    """
    pieces: List[np.ndarray] = []
    for param in module.parameters():
        if param.grad is None:
            pieces.append(np.zeros(param.size, dtype=np.float32))
        else:
            pieces.append(param.grad.ravel().astype(np.float32))
    return np.concatenate(pieces)


def flatten_grads_into(module: Module) -> np.ndarray:
    """:func:`flatten_grads` without the per-parameter intermediates.

    One freshly allocated float32 output buffer, filled by casting slice
    assignment — bit-identical values (the float64→float32 cast happens
    per element either way).  The buffer must be fresh every call: the
    simulator's zero-copy aggregation adopts the first writable float32
    contribution it receives, so handing it a reused scratch buffer
    would let the engine scribble over the worker's next gradient.
    """
    params = module.parameters()
    out = np.empty(sum(p.size for p in params), dtype=np.float32)
    offset = 0
    for param in params:
        if param.grad is None:
            out[offset : offset + param.size] = 0.0
        else:
            out[offset : offset + param.size] = param.grad.ravel()
        offset += param.size
    return out


def load_flat_grads(module: Module, vector: np.ndarray) -> None:
    """Write a flat vector into the parameters' ``.grad`` slots."""
    _scatter(module.parameters(), vector, into_grad=True)


def _scatter(
    params: Sequence[Parameter], vector: np.ndarray, into_grad: bool
) -> None:
    vector = np.asarray(vector)
    total = sum(p.size for p in params)
    if vector.shape != (total,):
        raise ValueError(
            f"flat vector has shape {vector.shape}, model needs ({total},)"
        )
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size].reshape(param.data.shape)
        if into_grad:
            param.grad = chunk.astype(np.float64)
        else:
            param.data = chunk.astype(np.float64)
        offset += param.size

"""Flattening model state to/from the float32 vectors that cross the wire.

The distributed strategies exchange a model's parameters or gradients as a
single flat float32 vector — exactly the "gradient vector" the paper's
switch aggregates.  Round order follows ``Module.parameters()``, which is
deterministic (attribute-assignment order), so every worker agrees on the
layout without negotiation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Module, Parameter

__all__ = [
    "flatten_params",
    "load_flat_params",
    "flatten_grads",
    "load_flat_grads",
    "param_vector_size",
    "model_wire_bytes",
]


def param_vector_size(module: Module) -> int:
    """Number of scalar parameters in the module."""
    return module.n_parameters


def model_wire_bytes(module: Module) -> int:
    """Bytes of the float32 gradient vector this model ships per round."""
    return module.n_parameters * 4


def flatten_params(module: Module) -> np.ndarray:
    """Concatenate all parameters into one float32 vector."""
    return np.concatenate(
        [p.data.ravel() for p in module.parameters()]
    ).astype(np.float32)


def load_flat_params(module: Module, vector: np.ndarray) -> None:
    """Overwrite the module's parameters from a flat vector (any float dtype)."""
    _scatter(module.parameters(), vector, into_grad=False)


def flatten_grads(module: Module) -> np.ndarray:
    """Concatenate all gradients into one float32 vector.

    Parameters that received no gradient contribute zeros, so the vector
    layout is always identical across iterations and workers.
    """
    pieces: List[np.ndarray] = []
    for param in module.parameters():
        if param.grad is None:
            pieces.append(np.zeros(param.size, dtype=np.float32))
        else:
            pieces.append(param.grad.ravel().astype(np.float32))
    return np.concatenate(pieces)


def load_flat_grads(module: Module, vector: np.ndarray) -> None:
    """Write a flat vector into the parameters' ``.grad`` slots."""
    _scatter(module.parameters(), vector, into_grad=True)


def _scatter(
    params: Sequence[Parameter], vector: np.ndarray, into_grad: bool
) -> None:
    vector = np.asarray(vector)
    total = sum(p.size for p in params)
    if vector.shape != (total,):
        raise ValueError(
            f"flat vector has shape {vector.shape}, model needs ({total},)"
        )
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size].reshape(param.data.shape)
        if into_grad:
            param.grad = chunk.astype(np.float64)
        else:
            param.data = chunk.astype(np.float64)
        offset += param.size

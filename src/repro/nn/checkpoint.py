"""Checkpointing: save/restore model parameters and training progress.

Uses NumPy's ``.npz`` container — no pickle, no framework lock-in.  Two
levels:

* :func:`save_model` / :func:`load_model` — just a module's parameters,
  stored under their qualified names (``layer0.weight`` ...) so mismatched
  architectures fail loudly.
* :func:`save_algorithm` / :func:`load_algorithm` — the full flat weight
  vector plus update counter and episode-reward history, enough to resume
  or evaluate a distributed training run.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .layers import Module

__all__ = ["save_model", "load_model", "save_algorithm", "load_algorithm"]

PathLike = Union[str, "os.PathLike[str]"]


def save_model(module: Module, path: PathLike) -> None:
    """Write a module's parameters to ``path`` (.npz)."""
    arrays = {
        name: param.data for name, param in module.named_parameters()
    }
    if not arrays:
        raise ValueError("module has no parameters to save")
    np.savez(path, **arrays)


def load_model(module: Module, path: PathLike) -> None:
    """Restore parameters saved by :func:`save_model`.

    The module must have exactly the same parameter names and shapes.
    """
    with np.load(path) as archive:
        stored = dict(archive.items())
    expected = dict(module.named_parameters())
    if set(stored) != set(expected):
        missing = set(expected) - set(stored)
        extra = set(stored) - set(expected)
        raise ValueError(
            f"checkpoint does not match module: missing={sorted(missing)}, "
            f"unexpected={sorted(extra)}"
        )
    for name, param in expected.items():
        if stored[name].shape != param.data.shape:
            raise ValueError(
                f"parameter {name}: checkpoint shape {stored[name].shape} "
                f"!= model shape {param.data.shape}"
            )
        param.data = stored[name].astype(np.float64)


def save_algorithm(algorithm, path: PathLike) -> None:
    """Persist an :class:`repro.rl.base.Algorithm`'s training state."""
    np.savez(
        path,
        weights=algorithm.get_weights(),
        updates_applied=np.int64(algorithm.updates_applied),
        episode_rewards=np.asarray(algorithm.episode_rewards, dtype=np.float64),
        algorithm=np.bytes_(algorithm.name.encode()),
    )


def load_algorithm(algorithm, path: PathLike) -> None:
    """Restore state saved by :func:`save_algorithm` into ``algorithm``.

    The algorithm instance must be of the same kind (name) and model size.
    """
    with np.load(path) as archive:
        name = bytes(archive["algorithm"]).decode()
        if name != algorithm.name:
            raise ValueError(
                f"checkpoint is for {name!r}, not {algorithm.name!r}"
            )
        weights = archive["weights"]
        if weights.shape != (algorithm.n_params,):
            raise ValueError(
                f"checkpoint has {weights.shape[0]} parameters, model has "
                f"{algorithm.n_params}"
            )
        algorithm.set_weights(weights)
        algorithm.updates_applied = int(archive["updates_applied"])
        algorithm.episode_rewards = list(archive["episode_rewards"])

"""Optimizers: SGD (with momentum), Adam, and RMSProp.

Each optimizer steps on whatever is currently stored in ``param.grad`` —
in distributed training that is the *aggregated* gradient written back by
the strategy after the in-switch (or PS/AllReduce) aggregation completes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base class holding the parameter list and common bookkeeping."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        for param in self.params:
            if param.grad is not None:
                yield param, param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Sequence[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param, grad in self._grads():
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad in self._grads():
            key = id(param)
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            else:
                v = self._v[key]
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key], self._v[key] = m, v
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class RMSProp(Optimizer):
    """RMSProp, the optimizer classic DQN used."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self._sq: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param, grad in self._grads():
            key = id(param)
            sq = self._sq.get(key)
            if sq is None:
                sq = np.zeros_like(param.data)
            sq = self.alpha * sq + (1.0 - self.alpha) * grad**2
            self._sq[key] = sq
            param.data -= self.lr * grad / (np.sqrt(sq) + self.eps)

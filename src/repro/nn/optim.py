"""Optimizers: SGD (with momentum), Adam, and RMSProp.

Each optimizer steps on whatever is currently stored in ``param.grad`` —
in distributed training that is the *aggregated* gradient written back by
the strategy after the in-switch (or PS/AllReduce) aggregation completes.

PR 10 added a flat fast path: :meth:`Optimizer.step_flat` takes the whole
aggregated gradient as one float64 vector and updates parameters through
in-place math on flat state vectors plus two preallocated scratch
buffers, so a step allocates nothing on the hot loop.  Every fused
sequence mirrors the legacy per-parameter expression order exactly (same
IEEE-754 rounding at every intermediate — the only rewrites used are
commuting scalar multiplies, which are bit-exact), so fast and legacy
paths produce bit-identical weights; ``tests/test_compute_parity.py``
proves it per optimizer and end-to-end.  The path is chosen at
construction from ``repro.nn.fastpath``.

State layout note: the flat state lives in ``self._flat_state``, a dict
of string-keyed float64 vectors, because ``repro.faults.resync`` clones
optimizer state by copying dict attributes (string keys pass through its
id remap untouched).  The layout cache and scratch buffers are plain
list/ndarray attributes, which the cloner deliberately skips — each
instance rebuilds its own.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .fastpath import compute_fastpath_enabled
from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base class holding the parameter list and common bookkeeping."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        self._use_flat = compute_fastpath_enabled()
        self._flat_state: Dict[str, np.ndarray] = {}
        self._layout = None  # list attr: skipped by resync's state cloner
        self._scratch_a: np.ndarray | None = None
        self._scratch_b: np.ndarray | None = None

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Step on ``param.grad``.

        On the fast path the per-parameter grads are gathered into one
        flat vector (a missing grad contributes zeros — identical to the
        legacy skip whenever that parameter's state is zero, and the
        training flows never produce partial grads on warm state) and
        applied via :meth:`step_flat`.
        """
        if self._use_flat:
            self.step_flat(self._gather_flat_grads())
        else:
            self._step_legacy()

    def step_flat(self, flat_grad: np.ndarray) -> None:
        """Step on a flat float64 gradient covering ``self.params`` in order.

        ``flat_grad`` is read-only to this call; it may be a view into a
        larger aggregated-update vector.
        """
        layout = self._ensure_layout()
        vec = np.asarray(flat_grad, dtype=np.float64)
        if vec.shape != (self._total,):
            raise ValueError(
                f"flat gradient has shape {vec.shape}, expected ({self._total},)"
            )
        if self._scratch_a is None:
            self._scratch_a = np.empty(self._total, dtype=np.float64)
            self._scratch_b = np.empty(self._total, dtype=np.float64)
        self._step_flat(vec, layout)

    # -- flat-path plumbing -------------------------------------------------

    def _ensure_layout(self) -> List[Tuple[Parameter, slice, tuple]]:
        if self._layout is None:
            layout = []
            offset = 0
            for param in self.params:
                size = param.data.size
                layout.append((param, slice(offset, offset + size), param.data.shape))
                offset += size
            self._layout = layout
            self._total = offset
        return self._layout

    def _gather_flat_grads(self) -> np.ndarray:
        layout = self._ensure_layout()
        flat = np.empty(self._total, dtype=np.float64)
        for param, sl, _ in layout:
            if param.grad is None:
                flat[sl] = 0.0
            else:
                flat[sl] = param.grad.ravel()
        return flat

    def _flat_vector(self, key: str) -> np.ndarray:
        state = self._flat_state.get(key)
        if state is None:
            state = self._flat_state[key] = np.zeros(self._total, dtype=np.float64)
        return state

    def _apply_flat_update(self, update: np.ndarray, layout) -> None:
        for param, sl, shape in layout:
            param.data -= update[sl].reshape(shape)

    def _step_flat(self, vec: np.ndarray, layout) -> None:
        raise NotImplementedError

    # -- legacy path --------------------------------------------------------

    def _step_legacy(self) -> None:
        raise NotImplementedError

    def _grads(self):
        for param in self.params:
            if param.grad is not None:
                yield param, param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Sequence[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def _step_legacy(self) -> None:
        for param, grad in self._grads():
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update

    def _step_flat(self, vec: np.ndarray, layout) -> None:
        scratch = self._scratch_a
        if self.momentum:
            # velocity = momentum * velocity + grad
            velocity = self._flat_vector("velocity")
            velocity *= self.momentum
            velocity += vec
            np.multiply(velocity, self.lr, out=scratch)
        else:
            np.multiply(vec, self.lr, out=scratch)
        self._apply_flat_update(scratch, layout)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def _step_legacy(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad in self._grads():
            key = id(param)
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            else:
                v = self._v[key]
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key], self._v[key] = m, v
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def _step_flat(self, vec: np.ndarray, layout) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        m = self._flat_vector("m")
        v = self._flat_vector("v")
        scratch, update = self._scratch_a, self._scratch_b
        # m = beta1 * m + (1 - beta1) * grad
        m *= self.beta1
        np.multiply(vec, 1.0 - self.beta1, out=scratch)
        m += scratch
        # v = beta2 * v + (1 - beta2) * grad**2
        v *= self.beta2
        np.multiply(vec, vec, out=scratch)
        scratch *= 1.0 - self.beta2
        v += scratch
        # update = lr * (m / bias1) / (sqrt(v / bias2) + eps)
        np.divide(m, bias1, out=update)
        update *= self.lr
        np.divide(v, bias2, out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += self.eps
        update /= scratch
        self._apply_flat_update(update, layout)


class RMSProp(Optimizer):
    """RMSProp, the optimizer classic DQN used."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self._sq: Dict[int, np.ndarray] = {}

    def _step_legacy(self) -> None:
        for param, grad in self._grads():
            key = id(param)
            sq = self._sq.get(key)
            if sq is None:
                sq = np.zeros_like(param.data)
            sq = self.alpha * sq + (1.0 - self.alpha) * grad**2
            self._sq[key] = sq
            param.data -= self.lr * grad / (np.sqrt(sq) + self.eps)

    def _step_flat(self, vec: np.ndarray, layout) -> None:
        sq = self._flat_vector("sq")
        scratch, update = self._scratch_a, self._scratch_b
        # sq = alpha * sq + (1 - alpha) * grad**2
        sq *= self.alpha
        np.multiply(vec, vec, out=scratch)
        scratch *= 1.0 - self.alpha
        sq += scratch
        # update = (lr * grad) / (sqrt(sq) + eps)   [legacy multiplies lr first]
        np.sqrt(sq, out=scratch)
        scratch += self.eps
        np.multiply(vec, self.lr, out=update)
        update /= scratch
        self._apply_flat_update(update, layout)

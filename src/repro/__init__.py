"""iSwitch: in-switch gradient aggregation for distributed RL training.

A full Python reproduction of Li et al., *Accelerating Distributed
Reinforcement Learning with In-Switch Computing* (ISCA 2019):

* :mod:`repro.core` — the iSwitch protocol, in-switch accelerator,
  extended control/data planes and rack-scale hierarchical aggregation;
* :mod:`repro.netsim` — the discrete-event packet-level network simulator
  standing in for the NetFPGA testbed;
* :mod:`repro.nn` / :mod:`repro.rl` — NumPy autograd, the four RL
  workloads (DQN, A2C, PPO, DDPG) and their simulated environments;
* :mod:`repro.distributed` — synchronous and asynchronous training
  strategies (parameter server, Ring-AllReduce, iSwitch);
* :mod:`repro.telemetry` — the metrics/span/event subsystem every
  simulated component reports into (see ``TrainingResult.telemetry``);
* :mod:`repro.workloads` / :mod:`repro.experiments` — calibrated profiles
  and the harness regenerating every table and figure in the paper.
"""

__version__ = "1.0.0"

from . import core, distributed, netsim, nn, rl, telemetry, workloads

__all__ = [
    "core",
    "distributed",
    "netsim",
    "nn",
    "rl",
    "telemetry",
    "workloads",
    "__version__",
]

"""Command-line interface: regenerate paper artifacts and run trainings.

Usage::

    python -m repro list                      # what can I run?
    python -m repro exp table4                # regenerate a paper table
    python -m repro exp fig13 --iterations 500
    python -m repro train --strategy isw --workload dqn --iterations 50
    python -m repro train --mode async --strategy ps --workload ppo
    python -m repro jobs soak --jobs 32       # multi-tenant load generator
    python -m repro jobs submit --name mine --workers 3
    python -m repro jobs status

The consistent command groups are ``exp`` (paper artifacts), ``train``,
``bench``, and ``jobs`` (the multi-tenant fabric).  The pre-group
invocations — ``python -m repro table4`` and friends — keep working via a
shim that forwards to ``exp``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .bench import add_bench_arguments, run_bench
from .distributed.config import ExperimentConfig
from .distributed.registry import MODES, strategy_specs
from .distributed.runner import ASYNC_STRATEGIES, SYNC_STRATEGIES, run
from .multitenant.scheduler import POLICIES
from .experiments import (
    codec_ablation,
    fig4,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
    table3,
    table4,
    table5,
    utilization,
)

__all__ = ["main", "build_parser"]

#: Experiment subcommands: name -> (runner, iteration-knob name or None).
EXPERIMENTS = {
    "table1": (table1.run, None),
    "fig4": (fig4.run, "n_iterations"),
    "fig8": (fig8.run, None),
    "table3": (table3.run, "sync_iterations"),
    "table4": (table4.run, "n_iterations"),
    "table5": (table5.run, "n_updates"),
    "fig12": (fig12.run, "n_iterations"),
    "fig13": (fig13.run, "n_iterations"),
    "fig14": (fig14.run, "n_updates"),
    "fig15": (fig15.run, "n_iterations"),
    "utilization": (utilization.run, "n_iterations"),
    "codec_ablation": (codec_ablation.run, "n_iterations"),
}


def format_strategy_table() -> str:
    """A table of every registered (mode, strategy) pair and its needs."""
    rows = [
        (
            "mode",
            "strategy",
            "class",
            "needs server",
            "needs iswitch",
            "live",
            "multi-job",
            "codecs",
        )
    ]
    specs = sorted(strategy_specs(), key=lambda s: MODES.index(s.mode))
    for spec in specs:
        rows.append(
            (
                spec.mode,
                spec.name,
                spec.cls.__name__,
                "yes" if spec.requires_server else "no",
                "yes" if spec.requires_iswitch else "no",
                "yes" if spec.supports_live else "no",
                "yes" if spec.supports_multijob else "no",
                "all" if spec.requires_iswitch else "fp32",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    lines.append("")
    lines.append(
        "In the simulator only iSwitch strategies accept --loss-rate > 0; on the "
        "live backend every strategy recovers from injected datagram loss."
    )
    lines.append(
        "'live' strategies can run for real over loopback UDP: "
        "repro train --backend live (see README, 'Live mode')."
    )
    lines.append(
        "'multi-job' strategies can share one switch tree between tenants: "
        "repro jobs submit|status|soak (see README, 'Multi-tenancy')."
    )
    lines.append(
        "'codecs': aggregation numerics accepted via --codec (fp16/int32-bs/"
        "topk/int8 model the switch dataplane, so they need an iSwitch "
        "strategy; see DESIGN.md §12)."
    )
    return "\n".join(lines)


class _ListStrategiesAction(argparse.Action):
    """``--list-strategies``: print the registry and exit (like --help)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(format_strategy_table())
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iSwitch (ISCA 2019) reproduction harness",
    )
    parser.add_argument(
        "--list-strategies",
        action=_ListStrategiesAction,
        help="list every registered training strategy and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    everything = subparsers.add_parser(
        "all", help="regenerate every table and figure (quick windows)"
    )
    everything.add_argument(
        "--full",
        action="store_true",
        help="use the full default measurement windows (slower)",
    )

    exp = subparsers.add_parser(
        "exp", help="regenerate one paper table or figure"
    )
    exp.add_argument(
        "experiment",
        choices=tuple(EXPERIMENTS),
        help="which artifact to regenerate",
    )
    exp.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="measurement window (iterations or updates)",
    )

    # Shim: the pre-subcommand spellings (`repro table4`) keep working.
    for name in EXPERIMENTS:
        sub = subparsers.add_parser(name)
        sub.add_argument(
            "--iterations",
            type=int,
            default=None,
            help="measurement window (iterations or updates)",
        )

    bench = subparsers.add_parser(
        "bench",
        help="run the wall-clock benchmark matrix and write a JSON report",
    )
    add_bench_arguments(bench)

    train = subparsers.add_parser("train", help="run one distributed training")
    train.add_argument(
        "--mode", choices=("sync", "async"), default="sync", help="training mode"
    )
    train.add_argument(
        "--strategy",
        default="isw",
        help=f"sync: {SYNC_STRATEGIES}; async: {ASYNC_STRATEGIES}",
    )
    train.add_argument(
        "--workload",
        choices=("dqn", "a2c", "ppo", "ddpg", "synth"),
        default="dqn",
    )
    train.add_argument(
        "--backend",
        choices=("sim", "live"),
        default="sim",
        help="sim: discrete-event simulator (default); live: real worker/"
        "server processes over loopback UDP (every registered strategy)",
    )
    train.add_argument("--workers", "-n", type=int, default=4)
    train.add_argument("--iterations", type=int, default=50)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--staleness-bound", type=int, default=3, help="async only: S"
    )
    train.add_argument(
        "--shards",
        type=int,
        default=None,
        help="ps-shard only: number of shard servers (default: min(4, workers))",
    )
    train.add_argument(
        "--codec",
        default="fp32",
        help="aggregation numerics / wire codec: fp32 (default), fp16, "
        "int32-bs (block-scaled int32, integer-summed on the switch), "
        "topk (sparsified frames), int8 (sim-only loss model); "
        "non-fp32 codecs require an iSwitch strategy",
    )
    train.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="per-packet drop probability on every link (sim: iSwitch "
        "strategies only; live: any strategy)",
    )
    train.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="inject faults from a FaultPlan JSON (see DESIGN.md §6)",
    )
    train.add_argument(
        "--transport",
        choices=("packet", "train"),
        default="packet",
        help="sim transport granularity: one event per packet (default) or "
        "batched packet trains (same results, fewer events; DESIGN.md §11)",
    )
    train.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default="heap",
        help="event-queue backend: reference binary heap (default) or the "
        "calendar queue (identical dispatch order)",
    )
    train.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    train.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write run metrics (.prom => Prometheus text, else JSON)",
    )

    _add_jobs_parser(subparsers)
    return parser


#: Default multi-tenant batch state file (``repro jobs submit/status``).
DEFAULT_JOBS_STATE = ".repro-jobs.json"


def _add_jobs_parser(subparsers) -> None:
    jobs = subparsers.add_parser(
        "jobs", help="multi-tenant fabric: submit jobs, check status, soak"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    submit = jobs_sub.add_parser(
        "submit",
        help="add a job to the batch state file and replay the batch "
        "through a fresh fabric",
    )
    submit.add_argument("--name", required=True, help="job name (unique-ish)")
    submit.add_argument(
        "--workload",
        choices=("dqn", "a2c", "ppo", "ddpg", "synth"),
        default="synth",
    )
    submit.add_argument("--workers", "-n", type=int, default=2)
    submit.add_argument("--iterations", type=int, default=4)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--priority", type=int, default=0, help="strict-priority policy only"
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--job-id", type=int, default=None, help="explicit wire job id (1..127)"
    )
    submit.add_argument(
        "--n-params",
        type=int,
        default=None,
        help="synth workload only: model size override",
    )
    submit.add_argument(
        "--arrival",
        type=float,
        default=0.0,
        help="simulated arrival time (seconds)",
    )
    submit.add_argument(
        "--policy", choices=sorted(POLICIES), default="fifo",
        help="scheduler policy for the replay",
    )
    submit.add_argument("--state", metavar="PATH", default=DEFAULT_JOBS_STATE)
    submit.add_argument(
        "--no-run",
        action="store_true",
        help="record the job without replaying the batch",
    )

    status = jobs_sub.add_parser(
        "status", help="show the batch state file as a job table"
    )
    status.add_argument("--state", metavar="PATH", default=DEFAULT_JOBS_STATE)

    soak = jobs_sub.add_parser(
        "soak", help="load generator: a mixed stream of jobs on one fabric"
    )
    soak.add_argument("--jobs", type=int, default=32, help="number of jobs")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--policy", choices=sorted(POLICIES), default="fair")
    soak.add_argument("--racks", type=int, default=4)
    soak.add_argument(
        "--engines", type=int, default=8, help="SRAM engines per switch"
    )
    soak.add_argument(
        "--segments", type=int, default=32, help="segment slots per engine"
    )
    soak.add_argument(
        "--window",
        type=float,
        default=2e-3,
        help="arrival window (simulated seconds)",
    )
    soak.add_argument(
        "--iterations", type=int, default=3, help="iterations per job"
    )
    soak.add_argument("--tenants", type=int, default=4)
    soak.add_argument(
        "--state",
        metavar="PATH",
        default=None,
        help="also dump per-job summaries to this JSON file",
    )


def _run_experiment(name: str, iterations: Optional[int]) -> int:
    runner, knob = EXPERIMENTS[name]
    kwargs = {}
    if iterations is not None:
        if knob is None:
            print(f"{name} takes no --iterations knob", file=sys.stderr)
            return 2
        kwargs[knob] = iterations
    runner(**kwargs)
    return 0


#: Quick measurement windows for `repro all` (experiment -> knob value).
_QUICK_WINDOWS = {
    "fig4": 6,
    "table3": 6,
    "table4": 6,
    "table5": 50,
    "fig12": 6,
    "fig13": 400,
    "fig14": 400,
    "fig15": 6,
    "utilization": 6,
}


def _run_all(full: bool = False) -> int:
    """Regenerate every artifact back to back."""
    for name in EXPERIMENTS:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        iterations = None if full else _QUICK_WINDOWS.get(name)
        code = _run_experiment(name, iterations)
        if code != 0:
            return code
    return 0


def _write_telemetry(result, args: argparse.Namespace) -> None:
    from .telemetry.exporters import (
        write_chrome_trace,
        write_json,
        write_prometheus,
    )

    snapshot = result.telemetry
    if args.trace_out:
        write_chrome_trace(snapshot, args.trace_out)
        print(f"trace written:      {args.trace_out}")
    if args.metrics_out:
        if args.metrics_out.endswith((".prom", ".txt")):
            write_prometheus(snapshot, args.metrics_out)
        else:
            write_json(snapshot, args.metrics_out)
        print(f"metrics written:    {args.metrics_out}")


def _run_training(args: argparse.Namespace) -> int:
    # Accept mode-qualified names ("sync-isw") like ExperimentConfig does.
    strategy, mode = args.strategy, args.mode
    for prefix in ("sync", "async"):
        if strategy.startswith(prefix + "-"):
            strategy = strategy[len(prefix) + 1 :]
            mode = prefix
            break
    if mode == "sync":
        if strategy not in SYNC_STRATEGIES:
            print(
                f"sync strategies: {', '.join(SYNC_STRATEGIES)}", file=sys.stderr
            )
            return 2
    else:
        if strategy not in ASYNC_STRATEGIES:
            print(
                f"async strategies: {', '.join(ASYNC_STRATEGIES)}", file=sys.stderr
            )
            return 2
    want_telemetry = bool(args.trace_out or args.metrics_out)
    try:
        config = ExperimentConfig(
            strategy=strategy,
            workload=args.workload,
            mode=mode,
            backend=args.backend,
            n_workers=args.workers,
            iterations=args.iterations,
            seed=args.seed,
            staleness_bound=args.staleness_bound,
            codec=args.codec,
            loss_rate=args.loss_rate,
            ps_shards=args.shards,
            telemetry=want_telemetry,
            fault_plan=args.fault_plan,
            transport=args.transport,
            scheduler=args.scheduler,
        )
        result = run(config)
    except (OSError, ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if want_telemetry:
        _write_telemetry(result, args)
    live = result.backend == "live"
    print(f"strategy:           {result.strategy}")
    print(f"workload:           {result.workload}")
    print(f"backend:            {'live (loopback UDP)' if live else 'sim'}")
    print(f"workers:            {result.n_workers}")
    print(f"iterations:         {result.iterations}")
    elapsed_label = "train wall time" if live else "simulated time"
    print(f"{elapsed_label + ':':<19} {result.elapsed:.3f} s")
    print(f"per-iteration time: {result.per_iteration_time * 1e3:.3f} ms")
    if result.mean_staleness is not None:
        print(f"mean staleness:     {result.mean_staleness:.2f}")
    if live:
        stats = result.server_stats
        counters = (result.worker_counters or {}).values()
        if stats is not None:
            frames_rx = stats.get("frames_rx", 0)
            frames_tx = stats.get("frames_tx", 0)
            print(f"switch frames:      {frames_rx} rx / {frames_tx} tx")
            drops = stats.get("drops_injected", 0)
        else:
            # Peer-to-peer collectives have no server process; the wire
            # activity (and any injected loss) lives on the workers.
            frames_rx = sum(c.get("frames_rx", 0) for c in counters)
            frames_tx = sum(c.get("frames_tx", 0) for c in counters)
            print(f"peer frames:        {frames_rx} rx / {frames_tx} tx")
            drops = sum(c.get("drops_injected", 0) for c in counters)
        if drops:
            helps = sum(
                c.get("help_sent", 0) + c.get("resend_requests_sent", 0)
                for c in counters
            )
            print(f"loss recovery:      {drops} drops injected, {helps} Helps sent")
        rewards = [
            r
            for r in (result.rewards or {}).values()
            if r != float("-inf")
        ]
        if rewards:
            print(f"avg episode reward: {sum(rewards) / len(rewards):.2f}")
    else:
        reward = result.final_average_reward
        if reward != float("-inf"):
            print(f"avg episode reward: {reward:.2f}")
    if result.fault_report is not None:
        for line in result.fault_report.summary():
            print(line)
        if not result.fault_report.ok:
            return 1
    return 0


def _load_jobs_state(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return {"specs": [], "last_run": []}


def _save_jobs_state(path: str, state: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2)
        handle.write("\n")


def _spec_from_dict(entry: dict):
    from .multitenant import JobSpec

    return JobSpec(
        name=entry["name"],
        workload=entry.get("workload", "synth"),
        n_workers=entry.get("n_workers", 2),
        iterations=entry.get("iterations", 4),
        seed=entry.get("seed", 0),
        priority=entry.get("priority", 0),
        tenant=entry.get("tenant", "default"),
        arrival_time=entry.get("arrival_time", 0.0),
        job_id=entry.get("job_id"),
        algorithm_overrides=entry.get("algorithm_overrides"),
    )


def _replay_jobs(state: dict) -> dict:
    """Run every recorded spec through a fresh fabric; record outcomes."""
    from .multitenant import SwitchFabric

    fabric = SwitchFabric(policy=state.get("policy", "fifo"), telemetry=False)
    for entry in state["specs"]:
        fabric.submit(_spec_from_dict(entry))
    handles = fabric.run()
    state["last_run"] = [
        handle.summary() for handle in handles.values()
    ]
    return state


_STATUS_COLUMNS = (
    "job_id",
    "name",
    "tenant",
    "status",
    "n_workers",
    "footprint",
    "wait_time",
    "run_time",
)


def _format_status_table(rows: List[dict]) -> str:
    header = tuple(c.replace("_", " ") for c in _STATUS_COLUMNS)
    table = [header]
    for row in rows:
        cells = []
        for column in _STATUS_COLUMNS:
            value = row.get(column)
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(f"{value * 1e3:.2f}ms")
            else:
                cells.append(str(value))
        table.append(tuple(cells))
    widths = [
        max(len(row[col]) for row in table) for col in range(len(header))
    ]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _run_jobs(args: argparse.Namespace) -> int:
    if args.jobs_command == "soak":
        return _run_jobs_soak(args)
    if args.jobs_command == "submit":
        return _run_jobs_submit(args)
    return _run_jobs_status(args)


def _run_jobs_submit(args: argparse.Namespace) -> int:
    overrides = {"n_params": args.n_params} if args.n_params else None
    entry = {
        "name": args.name,
        "workload": args.workload,
        "n_workers": args.workers,
        "iterations": args.iterations,
        "seed": args.seed,
        "priority": args.priority,
        "tenant": args.tenant,
        "arrival_time": args.arrival,
        "job_id": args.job_id,
        "algorithm_overrides": overrides,
    }
    try:
        _spec_from_dict(entry)  # validate before persisting
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    state = _load_jobs_state(args.state)
    state["policy"] = args.policy
    state.setdefault("specs", []).append(entry)
    if args.no_run:
        _save_jobs_state(args.state, state)
        print(
            f"recorded {args.name!r} ({len(state['specs'])} job(s) in "
            f"{args.state}); run `repro jobs submit` without --no-run or "
            "`repro jobs status` after a replay to see outcomes"
        )
        return 0
    try:
        state = _replay_jobs(state)
    except (ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _save_jobs_state(args.state, state)
    print(_format_status_table(state["last_run"]))
    return 0


def _run_jobs_status(args: argparse.Namespace) -> int:
    state = _load_jobs_state(args.state)
    if not state.get("specs"):
        print(f"no jobs recorded in {args.state}")
        return 0
    rows = state.get("last_run") or []
    if not rows:
        rows = [
            {"name": entry["name"], "tenant": entry.get("tenant", "default"),
             "n_workers": entry.get("n_workers", 2), "status": "recorded"}
            for entry in state["specs"]
        ]
    print(_format_status_table(rows))
    return 0


def _run_jobs_soak(args: argparse.Namespace) -> int:
    from .multitenant import run_soak

    try:
        fabric, report = run_soak(
            n_jobs=args.jobs,
            seed=args.seed,
            policy=args.policy,
            n_racks=args.racks,
            sram_engines=args.engines,
            sram_segments_per_engine=args.segments,
            arrival_window=args.window,
            iterations=args.iterations,
            n_tenants=args.tenants,
            telemetry=False,
        )
    except (ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.state:
        _save_jobs_state(
            args.state,
            {
                "policy": report.policy,
                "specs": [],
                "last_run": [
                    h.summary() for h in fabric.handles.values()
                ],
            },
        )
        print(f"per-job summaries written: {args.state}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:  exp", "|".join(EXPERIMENTS))
        print(
            "training:     train --mode sync|async --strategy "
            f"{'|'.join(sorted(set(SYNC_STRATEGIES + ASYNC_STRATEGIES)))} ..."
        )
        print("multi-tenant: jobs submit|status|soak")
        print("strategies:   repro --list-strategies")
        return 0
    if args.command == "train":
        return _run_training(args)
    if args.command == "bench":
        return run_bench(args)
    if args.command == "jobs":
        return _run_jobs(args)
    if args.command == "all":
        return _run_all(full=args.full)
    if args.command == "exp":
        return _run_experiment(args.experiment, args.iterations)
    # Shim: bare experiment names forward to `exp`.
    return _run_experiment(args.command, args.iterations)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: regenerate paper artifacts and run trainings.

Usage::

    python -m repro list                      # what can I run?
    python -m repro table4                    # regenerate a paper table
    python -m repro fig13 --iterations 500    # a figure, custom depth
    python -m repro train --strategy isw --workload dqn --iterations 50
    python -m repro train --mode async --strategy ps --workload ppo

Every experiment subcommand accepts the knobs its module exposes; ``train``
drives a single strategy and prints the result summary.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import add_bench_arguments, run_bench
from .distributed.config import ExperimentConfig
from .distributed.registry import MODES, strategy_specs
from .distributed.runner import ASYNC_STRATEGIES, SYNC_STRATEGIES, run
from .experiments import (
    fig4,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
    table3,
    table4,
    table5,
    utilization,
)

__all__ = ["main", "build_parser"]

#: Experiment subcommands: name -> (runner, iteration-knob name or None).
EXPERIMENTS = {
    "table1": (table1.run, None),
    "fig4": (fig4.run, "n_iterations"),
    "fig8": (fig8.run, None),
    "table3": (table3.run, "sync_iterations"),
    "table4": (table4.run, "n_iterations"),
    "table5": (table5.run, "n_updates"),
    "fig12": (fig12.run, "n_iterations"),
    "fig13": (fig13.run, "n_iterations"),
    "fig14": (fig14.run, "n_updates"),
    "fig15": (fig15.run, "n_iterations"),
    "utilization": (utilization.run, "n_iterations"),
}


def format_strategy_table() -> str:
    """A table of every registered (mode, strategy) pair and its needs."""
    rows = [("mode", "strategy", "class", "needs server", "needs iswitch", "live")]
    specs = sorted(strategy_specs(), key=lambda s: MODES.index(s.mode))
    for spec in specs:
        rows.append(
            (
                spec.mode,
                spec.name,
                spec.cls.__name__,
                "yes" if spec.requires_server else "no",
                "yes" if spec.requires_iswitch else "no",
                "yes" if spec.supports_live else "no",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    lines.append("")
    lines.append(
        "iSwitch strategies are the loss-tolerant ones; only they accept "
        "--loss-rate > 0."
    )
    lines.append(
        "'live' strategies can run for real over loopback UDP: "
        "repro train --backend live (see README, 'Live mode')."
    )
    return "\n".join(lines)


class _ListStrategiesAction(argparse.Action):
    """``--list-strategies``: print the registry and exit (like --help)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(format_strategy_table())
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iSwitch (ISCA 2019) reproduction harness",
    )
    parser.add_argument(
        "--list-strategies",
        action=_ListStrategiesAction,
        help="list every registered training strategy and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    everything = subparsers.add_parser(
        "all", help="regenerate every table and figure (quick windows)"
    )
    everything.add_argument(
        "--full",
        action="store_true",
        help="use the full default measurement windows (slower)",
    )

    for name in EXPERIMENTS:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument(
            "--iterations",
            type=int,
            default=None,
            help="measurement window (iterations or updates)",
        )

    bench = subparsers.add_parser(
        "bench",
        help="run the wall-clock benchmark matrix and write a JSON report",
    )
    add_bench_arguments(bench)

    train = subparsers.add_parser("train", help="run one distributed training")
    train.add_argument(
        "--mode", choices=("sync", "async"), default="sync", help="training mode"
    )
    train.add_argument(
        "--strategy",
        default="isw",
        help=f"sync: {SYNC_STRATEGIES}; async: {ASYNC_STRATEGIES}",
    )
    train.add_argument(
        "--workload",
        choices=("dqn", "a2c", "ppo", "ddpg", "synth"),
        default="dqn",
    )
    train.add_argument(
        "--backend",
        choices=("sim", "live"),
        default="sim",
        help="sim: discrete-event simulator (default); live: real worker/"
        "switch processes over loopback UDP (sync isw/ps only)",
    )
    train.add_argument("--workers", "-n", type=int, default=4)
    train.add_argument("--iterations", type=int, default=50)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--staleness-bound", type=int, default=3, help="async only: S"
    )
    train.add_argument(
        "--shards",
        type=int,
        default=None,
        help="ps-shard only: number of shard servers (default: min(4, workers))",
    )
    train.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="per-packet drop probability on every link (isw only)",
    )
    train.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="inject faults from a FaultPlan JSON (see DESIGN.md §6)",
    )
    train.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    train.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write run metrics (.prom => Prometheus text, else JSON)",
    )
    return parser


def _run_experiment(name: str, iterations: Optional[int]) -> int:
    runner, knob = EXPERIMENTS[name]
    kwargs = {}
    if iterations is not None:
        if knob is None:
            print(f"{name} takes no --iterations knob", file=sys.stderr)
            return 2
        kwargs[knob] = iterations
    runner(**kwargs)
    return 0


#: Quick measurement windows for `repro all` (experiment -> knob value).
_QUICK_WINDOWS = {
    "fig4": 6,
    "table3": 6,
    "table4": 6,
    "table5": 50,
    "fig12": 6,
    "fig13": 400,
    "fig14": 400,
    "fig15": 6,
    "utilization": 6,
}


def _run_all(full: bool = False) -> int:
    """Regenerate every artifact back to back."""
    for name in EXPERIMENTS:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        iterations = None if full else _QUICK_WINDOWS.get(name)
        code = _run_experiment(name, iterations)
        if code != 0:
            return code
    return 0


def _write_telemetry(result, args: argparse.Namespace) -> None:
    from .telemetry.exporters import (
        write_chrome_trace,
        write_json,
        write_prometheus,
    )

    snapshot = result.telemetry
    if args.trace_out:
        write_chrome_trace(snapshot, args.trace_out)
        print(f"trace written:      {args.trace_out}")
    if args.metrics_out:
        if args.metrics_out.endswith((".prom", ".txt")):
            write_prometheus(snapshot, args.metrics_out)
        else:
            write_json(snapshot, args.metrics_out)
        print(f"metrics written:    {args.metrics_out}")


def _run_training(args: argparse.Namespace) -> int:
    # Accept mode-qualified names ("sync-isw") like ExperimentConfig does.
    strategy, mode = args.strategy, args.mode
    for prefix in ("sync", "async"):
        if strategy.startswith(prefix + "-"):
            strategy = strategy[len(prefix) + 1 :]
            mode = prefix
            break
    if mode == "sync":
        if strategy not in SYNC_STRATEGIES:
            print(
                f"sync strategies: {', '.join(SYNC_STRATEGIES)}", file=sys.stderr
            )
            return 2
    else:
        if strategy not in ASYNC_STRATEGIES:
            print(
                f"async strategies: {', '.join(ASYNC_STRATEGIES)}", file=sys.stderr
            )
            return 2
    want_telemetry = bool(args.trace_out or args.metrics_out)
    try:
        config = ExperimentConfig(
            strategy=strategy,
            workload=args.workload,
            mode=mode,
            backend=args.backend,
            n_workers=args.workers,
            iterations=args.iterations,
            seed=args.seed,
            staleness_bound=args.staleness_bound,
            loss_rate=args.loss_rate,
            ps_shards=args.shards,
            telemetry=want_telemetry,
            fault_plan=args.fault_plan,
        )
        result = run(config)
    except (OSError, ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if want_telemetry:
        _write_telemetry(result, args)
    live = result.extras.get("backend") == "live"
    print(f"strategy:           {result.strategy}")
    print(f"workload:           {result.workload}")
    print(f"backend:            {'live (loopback UDP)' if live else 'sim'}")
    print(f"workers:            {result.n_workers}")
    print(f"iterations:         {result.iterations}")
    elapsed_label = "train wall time" if live else "simulated time"
    print(f"{elapsed_label + ':':<19} {result.elapsed:.3f} s")
    print(f"per-iteration time: {result.per_iteration_time * 1e3:.3f} ms")
    if "mean_staleness" in result.extras:
        print(f"mean staleness:     {result.extras['mean_staleness']:.2f}")
    if live:
        stats = result.extras["server_stats"]
        frames_rx = stats.get("frames_rx", 0)
        frames_tx = stats.get("frames_tx", 0)
        print(f"switch frames:      {frames_rx} rx / {frames_tx} tx")
        drops = stats.get("drops_injected", 0)
        if drops:
            helps = sum(
                c.get("help_sent", 0)
                for c in result.extras["worker_counters"].values()
            )
            print(f"loss recovery:      {drops} drops injected, {helps} Helps sent")
        rewards = [
            r
            for r in result.extras.get("rewards", {}).values()
            if r != float("-inf")
        ]
        if rewards:
            print(f"avg episode reward: {sum(rewards) / len(rewards):.2f}")
    else:
        reward = result.final_average_reward
        if reward != float("-inf"):
            print(f"avg episode reward: {reward:.2f}")
    if result.fault_report is not None:
        for line in result.fault_report.summary():
            print(line)
        if not result.fault_report.ok:
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:", ", ".join(EXPERIMENTS))
        print(
            "training:    train --mode sync|async --strategy "
            f"{'|'.join(sorted(set(SYNC_STRATEGIES + ASYNC_STRATEGIES)))} ..."
        )
        print("strategies:  repro --list-strategies")
        return 0
    if args.command == "train":
        return _run_training(args)
    if args.command == "bench":
        return run_bench(args)
    if args.command == "all":
        return _run_all(full=args.full)
    return _run_experiment(args.command, args.iterations)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

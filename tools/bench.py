#!/usr/bin/env python
"""Thin launcher for the wall-clock benchmark harness.

Equivalent to ``python -m repro bench``; exists so CI and the Makefile can
invoke the harness without installing the package::

    PYTHONPATH=src python tools/bench.py --out benchmarks/results/BENCH_PR7.json
    PYTHONPATH=src python tools/bench.py --smoke --budget 120

See :mod:`repro.bench` for the scenario matrix and the report schema.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Offline markdown link checker (stdlib only).

Scans the markdown files given on the command line for inline links and
images (``[text](target)`` / ``![alt](target)``) and verifies that every
*local* target resolves:

* relative file paths must exist (relative to the linking file);
* ``path#anchor`` targets must also contain a matching heading anchor,
  using GitHub's slug rules (lowercase, spaces to dashes, punctuation
  dropped);
* bare ``#anchor`` targets are checked against the linking file itself.

``http(s)://`` and ``mailto:`` targets are deliberately skipped so CI
stays hermetic — the job guards against the common failure mode of
renaming or moving a doc without updating its cross-references.

Exit status is the number of broken links (0 = all good).

Usage::

    python tools/linkcheck.py README.md DESIGN.md docs/PROTOCOL.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

# Inline links/images.  [text](target "title") — title and surrounding
# whitespace tolerated; nested parens (rare in our docs) are not.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces become dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> Set[str]:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # '# comment' inside fences is not a heading
    slugs: Set[str] = set()
    counts: dict = {}
    for match in HEADING_RE.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # ignore example links in code blocks
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and dest.suffix.lower() in {".md", ".markdown"}:
            if anchor.lower() not in anchors_of(dest):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 1
    errors: List[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for line in errors:
        print(line, file=sys.stderr)
    if not errors:
        print(f"linkcheck: {len(argv)} files OK")
    return len(errors)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

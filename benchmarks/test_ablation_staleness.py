"""Ablation: the staleness bound S in async iSwitch (Algorithm 1).

A tighter bound discards more computed gradients (wasted LGC work) but
keeps committed gradients fresher; a looser bound commits everything.  At
S >= the natural staleness (~1 for iSwitch) nothing is discarded, which is
why the paper can run with S=3 and still see staleness ~1.
"""

from repro.distributed import ExperimentConfig, run
from repro.experiments.reporting import render_table


def sweep():
    rows = []
    for bound in (0, 1, 3, 10):
        result = run(
            ExperimentConfig(
                strategy="isw",
                workload="ppo",
                mode="async",
                n_workers=4,
                iterations=40,
                seed=4,
                staleness_bound=bound,
                telemetry=False,
            )
        )
        rows.append(
            {
                "bound": bound,
                "mean_staleness": result.mean_staleness,
                "max_staleness": result.max_staleness,
                "skipped": result.skipped_commits,
                "commits": result.commits,
            }
        )
    return rows


def test_ablation_staleness_bound(once):
    rows = once(sweep)
    print(
        render_table(
            ("S", "mean staleness", "max staleness", "skipped", "committed"),
            [
                (
                    r["bound"],
                    f"{r['mean_staleness']:.2f}",
                    f"{r['max_staleness']:.0f}",
                    r["skipped"],
                    r["commits"],
                )
                for r in rows
            ],
            title="Ablation: staleness bound S (async iSwitch, PPO, 4 workers)",
        )
    )
    by = {r["bound"]: r for r in rows}
    # The bound is enforced exactly.
    for r in rows:
        assert r["max_staleness"] <= r["bound"]
    # S=0 must discard work; generous bounds discard (almost) nothing.
    assert by[0]["skipped"] > 0
    assert by[10]["skipped"] == 0
    # iSwitch's natural staleness is ~1, so S=3 and S=10 behave alike
    # (the paper's justification for S=3).
    assert abs(by[3]["mean_staleness"] - by[10]["mean_staleness"]) < 0.3

"""Benchmark: regenerate Figure 15 (scalability at 4/6/9/12 workers).

Paper shape: at rack scale, iSwitch's hierarchical aggregation scales
nearly linearly in both modes; synchronous PS is second (central
bottleneck worsens with N); AR is worst (hop count linear in N); async
PS flattens because its gradient staleness grows with the worker count.
"""

from repro.experiments import fig15


def test_fig15_scalability(once):
    records = once(fig15.run, n_iterations=8, n_updates=50)
    by = {
        (r["mode"], r["workload"], r["strategy"], r["n_workers"]): r["speedup"]
        for r in records
    }

    for workload in ("ppo", "ddpg"):
        # Sync ordering at 12 workers: iSW > PS > AR (Figures 15a/15c).
        isw = by[("sync", workload, "isw", 12)]
        ps = by[("sync", workload, "ps", 12)]
        ar = by[("sync", workload, "ar", 12)]
        assert isw > ps > ar, (workload, isw, ps, ar)
        # iSwitch is near the ideal 3x line.
        assert isw > 2.5
        # AR's hop count is linear in N, so it gains little.
        assert ar < 1.6

        # Async (Figures 15b/15d): iSW near-linear, PS well below it.
        isw_async = by[("async", workload, "isw", 12)]
        ps_async = by[("async", workload, "ps", 12)]
        assert isw_async > 2.5
        assert ps_async < 0.75 * isw_async

        # Monotone growth for iSwitch across cluster sizes.
        for mode in ("sync", "async"):
            speedups = [
                by[(mode, workload, "isw", n)] for n in (4, 6, 9, 12)
            ]
            assert speedups == sorted(speedups)

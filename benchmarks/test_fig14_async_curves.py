"""Benchmark: regenerate Figure 14 (DQN asynchronous training curves).

Paper shape: Async iSwitch reaches the same reward level in a fraction of
Async PS's wall-clock time, through both a shorter update interval and
fresher (less stale) gradients.
"""

from repro.experiments import fig14


def test_fig14_dqn_async_training_curves(once):
    records = once(fig14.run, n_updates=1000)
    by = {r["strategy"]: r for r in records}

    # Both emergent effects:
    assert by["isw"]["mean_staleness"] < 0.5 * by["ps"]["mean_staleness"]
    assert by["isw"]["per_iteration_ms"] < by["ps"]["per_iteration_ms"]
    assert by["isw"]["elapsed"] < 0.7 * by["ps"]["elapsed"]

    # iSwitch's reward at PS's finishing time is at least PS's final level
    # (its curve dominates).
    assert by["isw"]["final_reward"] >= by["ps"]["final_reward"] - 0.5

    for record in records:
        assert len(record["times"]) > 5

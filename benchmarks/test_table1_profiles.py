"""Benchmark: regenerate Table 1 (workload study)."""

from repro.experiments import table1


def test_table1_profiles(once):
    records = once(table1.run)
    by = {r["algorithm"]: r for r in records}
    # Paper Table 1: model sizes and iteration counts.
    assert by["DQN"]["model_bytes"] == int(6.41 * 1024 * 1024)
    assert by["A2C"]["model_bytes"] == int(3.31 * 1024 * 1024)
    assert by["PPO"]["model_bytes"] == int(40.02 * 1024)
    assert by["DDPG"]["model_bytes"] == int(157.52 * 1024)
    assert by["DQN"]["iterations"] == 1_400_000
    # The motivating spread: DQN ships two orders of magnitude more data
    # per iteration than PPO.
    assert by["DQN"]["frames_per_vector"] > 100 * by["PPO"]["frames_per_vector"]

"""Ablation: compute-time jitter (stragglers).

Synchronous training pays the barrier: each iteration waits for the
slowest worker, so per-iteration time inflates with compute variance.
Asynchronous iSwitch is explicitly designed so "slower workers commit
less without blocking the training" — its update interval tracks the
*mean* worker, not the max.  This bench sweeps the lognormal jitter sigma
and measures both.
"""

import dataclasses

from repro.distributed import ExperimentConfig, run
from repro.experiments.reporting import render_table
from repro.workloads import get_profile


def sweep():
    base = get_profile("ppo")
    rows = []
    for jitter in (0.0, 0.1, 0.3):
        profile = dataclasses.replace(base, compute_jitter=jitter)
        sync = run(
            ExperimentConfig(
                strategy="isw",
                workload="ppo",
                mode="sync",
                n_workers=4,
                iterations=12,
                seed=2,
                profile=profile,
                telemetry=False,
            )
        )
        asynchronous = run(
            ExperimentConfig(
                strategy="isw",
                workload="ppo",
                mode="async",
                n_workers=4,
                iterations=60,
                seed=2,
                profile=profile,
                telemetry=False,
            )
        )
        rows.append(
            {
                "jitter": jitter,
                "sync_ms": sync.per_iteration_time * 1e3,
                "async_ms": asynchronous.per_iteration_time * 1e3,
            }
        )
    return rows


def test_ablation_stragglers(once):
    rows = once(sweep)
    print(
        render_table(
            ("jitter sigma", "sync iSW iter (ms)", "async iSW interval (ms)"),
            [
                (f"{r['jitter']:.2f}", f"{r['sync_ms']:.2f}", f"{r['async_ms']:.2f}")
                for r in rows
            ],
            title="Ablation: straggler jitter — sync barriers vs async pipeline "
            "(PPO, 4 workers)",
        )
    )
    by = {r["jitter"]: r for r in rows}
    # The sync barrier amplifies jitter: per-iteration time grows with
    # sigma (E[max of 4 lognormals] > mean).
    assert by[0.3]["sync_ms"] > 1.08 * by[0.0]["sync_ms"]
    assert by[0.3]["sync_ms"] > by[0.1]["sync_ms"] > by[0.0]["sync_ms"]
    # Async absorbs stragglers: its interval moves far less than sync's.
    sync_inflation = by[0.3]["sync_ms"] / by[0.0]["sync_ms"]
    async_inflation = by[0.3]["async_ms"] / by[0.0]["async_ms"]
    assert async_inflation < 0.5 * (sync_inflation - 1.0) + 1.0

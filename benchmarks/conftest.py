"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
asserts its qualitative *shape* (who wins, roughly by how much, where the
crossovers fall).  Absolute milliseconds live in the printed report and
EXPERIMENTS.md, not in assertions — the simulator is calibrated, not the
authors' testbed.

Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print their paper-style tables when run with ``-s``.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is slow; tag it so plain test runs can
    deselect with ``-m "not slow"`` without touching each file."""
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.slow)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    re-measures Python overhead, so a single round is both faster and
    honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner

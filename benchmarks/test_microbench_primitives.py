"""Microbenchmarks: throughput of the core primitives.

Unlike the table/figure benches (one deterministic simulation, pedantic
single round), these measure the *host* performance of the building
blocks — useful when profiling why a large simulation is slow.
"""

import numpy as np

from repro.core.accelerator import AggregationEngine
from repro.core.protocol import FLOATS_PER_SEGMENT, DataSegment, SegmentPlan
from repro.netsim.events import Simulator
from repro.nn import Adam, Tensor, mlp


def test_engine_contribution_throughput(benchmark):
    """Aggregation-engine contributions per second (366-float segments)."""
    engine = AggregationEngine(threshold=4)
    data = [
        np.random.default_rng(i).standard_normal(FLOATS_PER_SEGMENT).astype(
            np.float32
        )
        for i in range(4)
    ]
    counter = [0]

    def contribute_round():
        seg = counter[0]
        counter[0] += 1
        for worker in range(4):
            engine.contribute(
                DataSegment(seg=seg, data=data[worker], sender=f"w{worker}")
            )

    benchmark(contribute_round)
    assert engine.stats.completions > 0


def test_simulator_event_throughput(benchmark):
    """Raw discrete-event scheduling + dispatch rate."""

    def run_1000_events():
        sim = Simulator()
        for i in range(1000):
            sim.schedule(float(i) * 1e-6, lambda: None)
        sim.run()
        return sim.processed_events

    processed = benchmark(run_1000_events)
    assert processed == 1000


def test_segment_plan_split_throughput(benchmark):
    """Splitting a PPO-sized vector into wire segments."""
    plan = SegmentPlan(10_240)
    vector = np.random.default_rng(0).standard_normal(10_240).astype(np.float32)
    segments = benchmark(plan.split, vector, 0)
    assert len(segments) == plan.n_chunks


def test_autograd_training_step_throughput(benchmark):
    """One forward+backward+Adam step of a 64x64 MLP (the DQN-class net)."""
    net = mlp([5, 64, 64, 3], rng=np.random.default_rng(0))
    optimizer = Adam(net.parameters(), lr=1e-3)
    x = np.random.default_rng(1).standard_normal((32, 5))

    def step():
        net.zero_grad()
        loss = (net(Tensor(x)) ** 2.0).mean()
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)

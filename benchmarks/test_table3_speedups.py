"""Benchmark: regenerate Table 3 (end-to-end speedup summary).

Paper headline: iSwitch delivers 1.72x-3.66x system-level speedup for
synchronous training and 1.56x-3.71x for asynchronous training over the
respective PS baselines, with the largest gains on the communication-bound
DQN workload.
"""

from repro.experiments import table3


def test_table3_speedup_summary(once):
    records = once(table3.run, sync_iterations=10, async_updates=80)
    by = {(r["mode"], r["workload"], r["strategy"]): r["speedup"] for r in records}

    sync_isw = [by[("sync", w, "isw")] for w in ("dqn", "a2c", "ppo", "ddpg")]
    async_isw = [by[("async", w, "isw")] for w in ("dqn", "a2c", "ppo", "ddpg")]

    # Every iSwitch configuration beats its PS baseline.
    assert all(s > 1.2 for s in sync_isw), sync_isw
    assert all(s > 1.2 for s in async_isw), async_isw

    # The paper's ranges: peak speedup 3.5-4x on DQN, bottom above ~1.7x.
    assert 3.0 < max(sync_isw) < 4.5
    assert 3.0 < max(async_isw) < 4.8
    assert by[("sync", "dqn", "isw")] == max(sync_isw)

    # AR is no silver bullet: helps DQN, hurts PPO (paper Table 3 AR row).
    assert by[("sync", "dqn", "ar")] > 1.4
    assert by[("sync", "ppo", "ar")] < 1.1

"""Benchmark: regenerate Figure 12 (normalized sync per-iteration time).

Paper shape: normalized against PS, iSwitch cuts per-iteration time by
41.9%-72.7% thanks to an 81.6%-85.8% reduction in gradient-aggregation
time; AR sits between the two on big models and above PS on small ones.
"""

from repro.experiments import fig12


def test_fig12_normalized_iteration_time(once):
    records = once(fig12.run, n_iterations=10)
    by = {(r["workload"], r["strategy"]): r for r in records}

    for workload in ("dqn", "a2c", "ppo", "ddpg"):
        assert by[(workload, "ps")]["normalized_time"] == 1.0
        isw = by[(workload, "isw")]
        # Paper: 41.9%-72.7% shorter iterations...
        assert 0.27 <= isw["normalized_time"] <= 0.60, (workload, isw)
        # ...driven by 81.6%-85.8% less aggregation time.
        assert isw["agg_reduction_vs_ps"] > 0.75, workload

    # Component sanity: compute share identical across strategies (same
    # trace), so normalized compute components match.
    for workload in ("dqn", "ppo"):
        ps_fwd = by[(workload, "ps")]["components"]["forward_pass"]
        isw_fwd = by[(workload, "isw")]["components"]["forward_pass"]
        assert abs(ps_fwd - isw_fwd) / ps_fwd < 0.05

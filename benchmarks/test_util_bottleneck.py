"""Extra analysis bench: the PS central-link bottleneck, quantified.

Paper §2.3: "the centralized parameter server is the bottleneck...  all
training workers have to interact with the central server"; §6.1: iSwitch
"offers balanced communication by assigning a dedicated network link to
each worker node, which removes the bottleneck caused by the central link
in PS design."  This bench measures per-link utilization directly.
"""

from repro.experiments import utilization


def test_central_link_bottleneck(once):
    records = once(utilization.run, workload="dqn", n_iterations=8)
    by = {r["strategy"]: r for r in records}

    ps = by["ps"]
    # The server's link carries every worker's traffic: its utilization is
    # ~N times a single worker link's (N = 4 here).
    assert ps["server_rx"] > 3.0 * ps["worker_uplink_mean"]
    assert ps["server_tx"] > 3.0 * ps["worker_uplink_mean"]

    # iSwitch and AR have no central link at all, and their worker links
    # are evenly loaded (max ≈ min across workers).
    for strategy in ("ar", "isw"):
        record = by[strategy]
        assert "server_rx" not in record
        spread = record["worker_uplink_max"] - record["worker_uplink_min"]
        assert spread < 0.1 * record["worker_uplink_max"] + 1e-6

    # AR moves ~2x the bytes of iSwitch per iteration (reduce-scatter +
    # all-gather vs one up + one down), but over longer iterations; the
    # clean invariant is per-iteration volume, checked via busy seconds
    # normalized by elapsed x iterations.
    ar_volume = by["ar"]["worker_uplink_mean"] * by["ar"]["elapsed"]
    isw_volume = by["isw"]["worker_uplink_mean"] * by["isw"]["elapsed"]
    assert 1.2 < ar_volume / isw_volume < 2.5

"""Ablation: link bandwidth (why the paper stayed at 10 GbE).

§5.3: "Consider the small size of transferred gradients of RL models,
e.g., 40KB for PPO, we do not consider supporting larger network
connections (i.e., 40~100Gbps) in our experiments."  This bench sweeps
the link speed and shows why: for RL-sized vectors the end-to-end
iteration time barely moves past 10 GbE (latency and host costs dominate,
not bandwidth), while iSwitch's advantage persists at every speed.
"""

from repro.distributed.runner import build_cluster
from repro.distributed.sync import SyncISwitch, SyncParameterServer
from repro.experiments.reporting import render_table
from repro.netsim.link import GBPS
from repro.workloads import get_profile


def measure(strategy_cls, with_server, use_iswitch, bandwidth, workload="ppo"):
    profile = get_profile(workload)
    net, workers = build_cluster(
        4,
        profile,
        with_server=with_server,
        use_iswitch=use_iswitch,
        seed=1,
        workload=workload,
    )
    for link in net.links:
        link.bandwidth = bandwidth
    return strategy_cls(net, workers, profile).run(8).per_iteration_time


def sweep(workload):
    rows = []
    for gbps in (1, 10, 40, 100):
        bandwidth = gbps * GBPS
        ps = measure(SyncParameterServer, True, False, bandwidth, workload)
        isw = measure(SyncISwitch, False, True, bandwidth, workload)
        rows.append(
            {
                "gbps": gbps,
                "ps_ms": ps * 1e3,
                "isw_ms": isw * 1e3,
                "speedup": ps / isw,
            }
        )
    return rows


def test_ablation_link_bandwidth(once):
    results = once(lambda: {"ppo": sweep("ppo"), "dqn": sweep("dqn")})
    for workload, rows in results.items():
        size = "40 KB" if workload == "ppo" else "6.41 MB"
        print(
            render_table(
                ("link", "PS iter (ms)", "iSW iter (ms)", "iSW speedup"),
                [
                    (
                        f"{r['gbps']} Gb/s",
                        f"{r['ps_ms']:.2f}",
                        f"{r['isw_ms']:.2f}",
                        f"{r['speedup']:.2f}x",
                    )
                    for r in rows
                ],
                title=f"Ablation: link bandwidth, {workload.upper()} "
                f"({size} vectors), 4 workers",
            )
        )
        print()

    ppo = {r["gbps"]: r for r in results["ppo"]}
    dqn = {r["gbps"]: r for r in results["dqn"]}
    # Beyond 10 GbE, extra bandwidth barely helps RL-sized vectors — the
    # paper's §5.3 justification for not testing 40-100 GbE.
    assert ppo[10]["ps_ms"] / ppo[100]["ps_ms"] < 1.05
    assert dqn[10]["ps_ms"] / dqn[100]["ps_ms"] < 1.35
    # Below the operating point, bandwidth *does* matter for the big
    # models: DQN's 6.41 MB vectors crawl at 1 GbE.
    assert dqn[1]["ps_ms"] > 2.0 * dqn[10]["ps_ms"]
    # ...but hardly for PPO's 40 KB (host costs dominate).
    assert ppo[1]["ps_ms"] < 1.15 * ppo[10]["ps_ms"]
    # iSwitch wins at every speed for both workloads.
    assert all(r["speedup"] > 1.5 for rows in results.values() for r in rows)

"""Benchmark: regenerate Table 5 (asynchronous training comparison).

Paper shape: Async iSwitch sees much fresher gradients (measured staleness
~1 vs ~3 for Async PS under the same bound S=3), which translates into
44.4%-77.8% fewer convergence iterations; its update interval beats PS on
the communication-heavy workloads (DQN) and loses slightly on the compute-
heavy small models (PPO, DDPG) — yet end-to-end it wins everywhere.
"""

from repro.experiments import table5


def test_table5_async_comparison(once):
    records = once(table5.run, n_updates=80)
    by = {(r["workload"], r["strategy"]): r for r in records}

    for workload in ("dqn", "a2c", "ppo", "ddpg"):
        ps = by[(workload, "ps")]
        isw = by[(workload, "isw")]
        # Staleness: iSwitch commits far fresher gradients.
        assert isw["mean_staleness"] < 0.6 * ps["mean_staleness"]
        # Hence fewer derived convergence iterations.
        assert isw["derived_iterations"] < ps["derived_iterations"]
        # End-to-end: async iSwitch wins on every workload (paper Table 5).
        assert isw["hours"] < ps["hours"], workload

    # Update-interval shape: iSW much faster for DQN, slower for PPO
    # (the paper's Table 5 signature pattern).
    assert (
        by[("dqn", "isw")]["per_iteration_ms"]
        < 0.6 * by[("dqn", "ps")]["per_iteration_ms"]
    )
    assert (
        by[("ppo", "isw")]["per_iteration_ms"]
        > by[("ppo", "ps")]["per_iteration_ms"]
    )

    # Interval times land within 35% of the paper's measurements.
    for record in records:
        ratio = record["per_iteration_ms"] / record["paper_per_iteration_ms"]
        assert 0.6 < ratio < 1.4, record

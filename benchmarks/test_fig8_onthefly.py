"""Benchmark: regenerate Figure 8 (conventional vs on-the-fly aggregation).

Paper shape: aggregating at packet granularity overlaps summation with
transmission; for multi-frame vectors the aggregation latency approaches
half the conventional wait-for-the-whole-vector approach.
"""

from repro.experiments import fig8


def test_fig8_on_the_fly_aggregation(once):
    records = once(fig8.run)
    by = {r["workload"]: r for r in records}
    for record in records:
        assert record["on_the_fly"] < record["conventional"]
    # Big vectors (thousands of frames) pipeline almost perfectly: ~2x.
    assert by["dqn"]["speedup"] > 1.8
    assert by["a2c"]["speedup"] > 1.8
    # Even the 28-frame PPO vector gains substantially.
    assert by["ppo"]["speedup"] > 1.3
    # Latency ordering follows vector size.
    assert (
        by["ppo"]["on_the_fly"]
        < by["ddpg"]["on_the_fly"]
        < by["a2c"]["on_the_fly"]
        < by["dqn"]["on_the_fly"]
    )

"""Benchmark: regenerate Figure 13 (DQN synchronous training curves).

Paper shape: all three synchronous strategies trace the same
reward-vs-iteration trajectory; on the wall-clock axis iSW reaches any
given reward level first, AR second, PS last.
"""

from repro.experiments import fig13


def test_fig13_dqn_sync_training_curves(once):
    records = once(fig13.run, n_iterations=800)
    by = {r["strategy"]: r for r in records}

    # Same trajectory => same final reward (to jitter).
    finals = [r["final_reward"] for r in records]
    assert max(finals) - min(finals) < 1.5, finals

    # Wall-clock compression: iSW < AR < PS.
    assert by["isw"]["elapsed"] < by["ar"]["elapsed"] < by["ps"]["elapsed"]
    assert by["isw"]["elapsed"] < 0.5 * by["ps"]["elapsed"]

    # Time-to-reward ordering at a mid-curve threshold.
    target = min(finals) - 0.5
    times = {
        s: fig13.time_to_reward(by[s], target) for s in ("ps", "ar", "isw")
    }
    assert times["isw"] <= times["ar"] <= times["ps"]

    # Training actually progressed (reward improved from the start).
    for record in records:
        assert record["rewards"][-1] > record["rewards"][0]

"""Benchmark: regenerate Table 4 (synchronous training comparison).

Paper shape: identical iteration counts and final rewards across PS / AR /
iSW; iSwitch has the shortest per-iteration time on all four workloads;
AR beats PS on the big models (DQN, A2C) but loses on the small ones
(PPO, DDPG).
"""

from repro.experiments import table4


def test_table4_sync_comparison(once):
    records = once(table4.run, n_iterations=10)
    by = {(r["workload"], r["strategy"]): r for r in records}

    # The numeric equivalence the paper relies on: same weights, hence the
    # same "Number of Iterations" and "Final Average Reward".
    assert all(r["trajectories_match"] for r in records)

    for workload in ("dqn", "a2c", "ppo", "ddpg"):
        isw = by[(workload, "isw")]["per_iteration_ms"]
        ps = by[(workload, "ps")]["per_iteration_ms"]
        ar = by[(workload, "ar")]["per_iteration_ms"]
        assert isw < ps and isw < ar, workload
        # Paper: iSW is 41.9%-72.7% shorter per iteration than PS.
        assert 0.25 < isw / ps < 0.65, (workload, isw, ps)

    # The AR-vs-PS crossover.
    assert by[("dqn", "ar")]["per_iteration_ms"] < by[("dqn", "ps")][
        "per_iteration_ms"
    ]
    assert by[("a2c", "ar")]["per_iteration_ms"] < by[("a2c", "ps")][
        "per_iteration_ms"
    ]
    assert by[("ppo", "ar")]["per_iteration_ms"] > by[("ppo", "isw")][
        "per_iteration_ms"
    ]

    # Per-iteration times land within 25% of the paper's measurements.
    for record in records:
        ratio = record["per_iteration_ms"] / record["paper_per_iteration_ms"]
        assert 0.75 < ratio < 1.25, record

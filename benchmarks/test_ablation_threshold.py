"""Ablation: the aggregation threshold H (the SetH control knob).

With H below the worker count, the switch broadcasts partial sums as soon
as any H commits arrive: updates come faster but each aggregates fewer
gradients.  This bench sweeps H on the async iSwitch runner and checks the
throughput/collectiveness trade-off.
"""

from repro.distributed import AsyncISwitch, build_cluster
from repro.experiments.reporting import render_table
from repro.workloads import get_profile


def sweep():
    profile = get_profile("ppo")
    rows = []
    for threshold in (1, 2, 4):
        net, workers = build_cluster(
            4, profile, with_server=False, use_iswitch=True, workload="ppo", seed=2
        )
        runner = AsyncISwitch(net, workers, profile, threshold=threshold)
        result = runner.run(40)
        rows.append(
            {
                "h": threshold,
                "per_update_ms": result.per_iteration_time * 1e3,
                "commits": result.commits,
                "updates": result.iterations,
            }
        )
    return rows


def test_ablation_aggregation_threshold(once):
    rows = once(sweep)
    print(
        render_table(
            ("H", "update interval (ms)", "commits", "updates"),
            [
                (r["h"], f"{r['per_update_ms']:.2f}", r["commits"], r["updates"])
                for r in rows
            ],
            title="Ablation: aggregation threshold H (async iSwitch, PPO, 4 workers)",
        )
    )
    by = {r["h"]: r for r in rows}
    # Smaller H -> more frequent (faster) weight updates.
    assert by[1]["per_update_ms"] < by[2]["per_update_ms"] < by[4]["per_update_ms"]
    # Every run completed the requested updates.
    assert all(r["updates"] == 40 for r in rows)
    # H=4 aggregates ~4 commits per update; H=1 aggregates one.
    assert by[4]["commits"] / by[4]["updates"] > 2.5
    assert by[1]["commits"] / by[1]["updates"] < 1.5

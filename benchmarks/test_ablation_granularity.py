"""Ablation: aggregation granularity (packet-level vs vector-level).

Sweeps the vector size and shows that the on-the-fly benefit grows with
the number of frames per vector: single-frame vectors gain nothing by
construction; kiloframe vectors approach the 2x pipelining limit.
"""

import pytest

from repro.experiments.fig8 import measure_aggregation_latency
from repro.experiments.reporting import format_bytes, render_table


def sweep():
    rows = []
    for model_bytes in (1464, 16 * 1464, 256 * 1464, 4096 * 1464):
        conventional = measure_aggregation_latency(model_bytes, on_the_fly=False)
        on_the_fly = measure_aggregation_latency(model_bytes, on_the_fly=True)
        rows.append(
            {
                "bytes": model_bytes,
                "conventional": conventional,
                "on_the_fly": on_the_fly,
                "speedup": conventional / on_the_fly,
            }
        )
    return rows


def test_ablation_aggregation_granularity(once):
    rows = once(sweep)
    print(
        render_table(
            ("vector", "conventional (us)", "on-the-fly (us)", "speedup"),
            [
                (
                    format_bytes(r["bytes"]),
                    f"{r['conventional'] * 1e6:.1f}",
                    f"{r['on_the_fly'] * 1e6:.1f}",
                    f"{r['speedup']:.2f}x",
                )
                for r in rows
            ],
            title="Ablation: on-the-fly benefit vs vector size",
        )
    )
    speedups = [r["speedup"] for r in rows]
    # Monotone in vector size, approaching the 2x pipelining bound.
    assert speedups == sorted(speedups)
    assert speedups[0] == pytest.approx(1.0, abs=0.25)
    assert speedups[-1] > 1.9
    assert all(s < 2.2 for s in speedups)

"""Ablation: why Ring-AllReduce loses on small models.

Sweeps the per-step software overhead of the AR implementation.  With zero
per-step cost, AR's bandwidth-optimality makes it competitive everywhere;
with the calibrated (realistic) cost, its 2(N-1) steps sink the small-model
workloads — reproducing the paper's PPO/DDPG crossover as a *consequence*
of the cost model rather than an assumption.
"""

import dataclasses

from repro.distributed import ExperimentConfig, run
from repro.experiments.reporting import render_table
from repro.workloads import DEFAULT_COST_MODEL


def sweep():
    rows = []
    for overhead in (0.0, 0.5e-3, 1.7e-3):
        cost = dataclasses.replace(
            DEFAULT_COST_MODEL, allreduce_step_overhead=overhead
        )
        ar = run(
            ExperimentConfig(
                strategy="ar",
                workload="ppo",
                mode="sync",
                n_workers=4,
                iterations=8,
                seed=1,
                cost_model=cost,
                telemetry=False,
            )
        )
        ps = run(
            ExperimentConfig(
                strategy="ps",
                workload="ppo",
                mode="sync",
                n_workers=4,
                iterations=8,
                seed=1,
                cost_model=cost,
                telemetry=False,
            )
        )
        rows.append(
            {
                "overhead_ms": overhead * 1e3,
                "ar_ms": ar.per_iteration_time * 1e3,
                "ps_ms": ps.per_iteration_time * 1e3,
            }
        )
    return rows


def test_ablation_allreduce_step_overhead(once):
    rows = once(sweep)
    print(
        render_table(
            ("step overhead (ms)", "AR iter (ms)", "PS iter (ms)", "AR wins?"),
            [
                (
                    f"{r['overhead_ms']:.2f}",
                    f"{r['ar_ms']:.2f}",
                    f"{r['ps_ms']:.2f}",
                    "yes" if r["ar_ms"] < r["ps_ms"] else "no",
                )
                for r in rows
            ],
            title="Ablation: AR per-step overhead on the PPO (40 KB) workload",
        )
    )
    # With free steps AR beats the PS on even the smallest model...
    assert rows[0]["ar_ms"] < rows[0]["ps_ms"]
    # ...and the calibrated overhead flips the outcome (the paper's
    # observed crossover).
    assert rows[-1]["ar_ms"] > rows[-1]["ps_ms"]
    # AR cost grows monotonically with the step overhead.
    ar_times = [r["ar_ms"] for r in rows]
    assert ar_times == sorted(ar_times)

"""Benchmark: regenerate Figure 4 (per-iteration breakdown, PS and AR).

Paper shape: gradient aggregation occupies 49.9%-83.2% of each training
iteration across the four workloads and both baselines, with DQN/PS at the
top of the range and the small-model workloads at the bottom.
"""

from repro.experiments import fig4


def test_fig4_breakdown(once):
    records = once(fig4.run, n_iterations=10)
    shares = {
        (r["strategy"], r["workload"]): r["aggregation_share"] for r in records
    }
    # Every configuration is communication-dominated.
    assert all(0.40 <= s <= 0.95 for s in shares.values()), shares
    # DQN under PS sits at the top of the paper's range (~83%).
    assert shares[("ps", "dqn")] > 0.78
    # The biggest model has the biggest PS aggregation share.
    assert shares[("ps", "dqn")] > shares[("ps", "ppo")]
    # The span brackets the paper's quoted range.
    assert min(shares.values()) < 0.65
    assert max(shares.values()) > 0.80

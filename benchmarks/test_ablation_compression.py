"""Ablation (extension): gradient wire compression on top of iSwitch.

The paper ships raw fp32 and cites quantization work (GradiVeQ) as a
complementary direction.  This bench measures how fp16/int8 wire codecs
shrink the iSwitch aggregation latency for the DQN-sized vector, and what
quantization error they cost — showing when compression matters (big
models on slow links) and when it is noise (iSwitch already made the
network cheap).
"""

import numpy as np

from repro.core import (
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    get_codec,
    iswitch_factory,
)
from repro.experiments.reporting import render_table
from repro.netsim import Simulator, build_star
from repro.workloads import get_profile


def measure(codec_name: str, n_elements: int):
    sim = Simulator()
    net = build_star(sim, 4, switch_factory=iswitch_factory)
    configure_aggregation(net)
    codec = get_codec(codec_name)
    base = SegmentPlan(n_elements, bytes_per_element=codec.bytes_per_element)
    frames_per_chunk = max(1, -(-base.n_frames // 128))
    plan = SegmentPlan(
        n_elements,
        frames_per_chunk=frames_per_chunk,
        bytes_per_element=codec.bytes_per_element,
    )
    results = {}
    clients = [
        AggregationClient(
            w, "tor0", plan, codec=codec,
            on_round_complete=lambda r, v, n=w.name: results.__setitem__(n, v),
        )
        for w in net.workers
    ]
    rng = np.random.default_rng(0)
    vectors = [rng.standard_normal(n_elements).astype(np.float32) for _ in clients]
    for client, vector in zip(clients, vectors):
        client.send_gradient(vector, 0)
    sim.run()
    exact = np.sum(vectors, axis=0)
    got = next(iter(results.values()))
    error = float(np.abs(got - exact).max() / np.abs(exact).max())
    return sim.now, error


def sweep():
    n_elements = get_profile("dqn").n_elements // 16  # keep the bench quick
    rows = []
    for name in ("fp32", "fp16", "int8"):
        latency, error = measure(name, n_elements)
        rows.append({"codec": name, "latency": latency, "error": error})
    return rows


def test_ablation_wire_compression(once):
    rows = once(sweep)
    base = rows[0]["latency"]
    print(
        render_table(
            ("codec", "agg latency (us)", "vs fp32", "max rel error"),
            [
                (
                    r["codec"],
                    f"{r['latency'] * 1e6:.1f}",
                    f"{r['latency'] / base:.2f}x",
                    f"{r['error']:.2e}",
                )
                for r in rows
            ],
            title="Ablation: wire compression on in-switch aggregation (DQN/16)",
        )
    )
    by = {r["codec"]: r for r in rows}
    # Latency scales with bytes per element.
    assert by["fp16"]["latency"] < 0.6 * by["fp32"]["latency"]
    assert by["int8"]["latency"] < 0.35 * by["fp32"]["latency"]
    # Error grows as precision drops, but stays bounded.
    assert by["fp32"]["error"] == 0.0
    assert by["fp16"]["error"] < 1e-3
    assert by["fp16"]["error"] < by["int8"]["error"] < 5e-2
